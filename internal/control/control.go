package control

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Frontend is the serving-tier actuator surface; *serve.Server satisfies it.
type Frontend interface {
	BatchWindow() (int, time.Duration)
	SetBatchWindow(maxBatch int, maxDelay time.Duration)
	TenantWeight(name string) int
	SetTenantWeight(name string, weight int)
	ShedFloor() serve.ShedLevel
	SetShedFloor(lvl serve.ShedLevel)
	TenantSLOs() map[string]time.Duration
}

// Pipeline is the execution-engine actuator surface; *monitor.Engine
// satisfies it. Ladder doubles as the stage-count probe for resolving
// per-stage gather histograms.
type Pipeline interface {
	InflightWindow() int
	SetInflightWindow(n int)
	Ladder() []monitor.LadderRung
}

// SparePool is the replacement-pool actuator surface; *monitor.Monitor
// satisfies it.
type SparePool interface {
	SpareCount() int
	ProvisionSpare(partition int) error
	RetireSpare() bool
}

// Limits are the hard clamps every control law respects. The controller
// never actuates outside them regardless of what the telemetry says.
type Limits struct {
	MinBatch, MaxBatch   int
	MinDelay, MaxDelay   time.Duration
	MinWindow, MaxWindow int
	MinSpares, MaxSpares int
	MinWeight, MaxWeight int
}

func (l *Limits) fill() {
	if l.MinBatch <= 0 {
		l.MinBatch = 1
	}
	if l.MaxBatch <= 0 {
		l.MaxBatch = 64
	}
	if l.MinDelay <= 0 {
		l.MinDelay = 50 * time.Microsecond
	}
	if l.MaxDelay <= 0 {
		l.MaxDelay = 20 * time.Millisecond
	}
	if l.MinWindow <= 0 {
		l.MinWindow = 1
	}
	if l.MaxWindow <= 0 {
		l.MaxWindow = 64
	}
	if l.MinSpares < 0 {
		l.MinSpares = 0
	}
	if l.MaxSpares <= 0 {
		l.MaxSpares = 8
	}
	if l.MinWeight <= 0 {
		l.MinWeight = 1
	}
	if l.MaxWeight <= 0 {
		l.MaxWeight = 64
	}
}

// Config wires a Controller to its signals and actuators. Any nil actuator
// disables the loops that drive it; the Disable* switches turn individual
// loops off even when the actuator is present (the -adaptive=false kill
// switch simply never constructs a Controller at all).
type Config struct {
	// Epoch is the control tick. Default 500ms — slow enough that the
	// histogram deltas carry real samples, fast enough to react to an SLO
	// breach within a couple of seconds.
	Epoch time.Duration
	// Registry is where the signals live. It must be the same registry the
	// serve front-end and engine record into. Default telemetry.Default.
	Registry *telemetry.Registry

	Frontend Frontend
	Pipeline Pipeline
	Spares   SparePool
	// Events feeds the spare loop's death-rate signal; typically
	// Engine.EventBus(). Nil disables the spare loop's burst response (the
	// rate EWMA then only ever sees zero deaths).
	Events *telemetry.Bus[monitor.Event]

	Limits Limits
	// Headroom pads the Little's-law window target so the window does not
	// throttle the steady state it was measured from. Default 1.25.
	Headroom float64
	// BreachEpochs is how many consecutive breached (or clean) epochs the
	// SLO loop requires before escalating (or relaxing). Default 2.
	BreachEpochs int
	// SpareLead is how many epochs of death-rate coverage the spare pool
	// targets. Default 2.
	SpareLead int
	// QueueHighWater is the per-stage queue depth (batches waiting behind the
	// credit window) above which the queue loop raises the shed floor — a
	// leading indicator that trips before the latency histograms show a p99
	// breach. Default Limits.MaxWindow: a stage backlog as deep as the widest
	// inflight window means the pipeline is saturated.
	QueueHighWater int

	DisableBatch     bool
	DisableInflight  bool
	DisableSpares    bool
	DisableSLO       bool
	DisableQueueShed bool
}

func (c *Config) fill() {
	if c.Epoch <= 0 {
		c.Epoch = 500 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	if c.Headroom <= 0 {
		c.Headroom = 1.25
	}
	if c.BreachEpochs <= 0 {
		c.BreachEpochs = 2
	}
	if c.SpareLead <= 0 {
		c.SpareLead = 2
	}
	c.Limits.fill()
	if c.QueueHighWater <= 0 {
		c.QueueHighWater = c.Limits.MaxWindow
	}
}

// Decision records one actuation: which loop moved which knob, from where
// to where, and why. Decisions flow to subscribers of Decisions() and are
// mirrored into mvtee_control_decisions_total{loop,direction}.
type Decision struct {
	Loop      string // telemetry.ControlLoop*
	Direction string // "up" | "down"
	Knob      string // knob name, e.g. "max_batch", "shed_floor"
	Tenant    string // SLO-loop decisions only
	From, To  int64
	Reason    string
}

// tenantSLO is the SLO loop's per-tenant state.
type tenantSLO struct {
	slo      time.Duration
	hist     *telemetry.Histogram
	weight   *telemetry.Gauge
	breach   *telemetry.Counter
	prev     telemetry.HistState
	base     int // weight to restore to after recovery (0 = not yet sampled)
	over     int // consecutive breached epochs
	under    int // consecutive clean epochs
	breached bool
}

// Controller is the closed-loop control plane. One goroutine (Start/Stop),
// or explicit deterministic ticks via Step for tests.
type Controller struct {
	cfg Config

	// Signal handles, resolved once at construction.
	flushSize  *telemetry.Counter
	flushTimer *telemetry.Counter
	fill       *telemetry.Histogram
	batches    *telemetry.Counter
	gather     []*telemetry.Histogram
	qdepth     []*telemetry.Gauge

	// Knob mirrors and decision counters.
	epochs      *telemetry.Counter
	gBatchMax   *telemetry.Gauge
	gBatchDelay *telemetry.Gauge
	gInflight   *telemetry.Gauge
	gSpares     *telemetry.Gauge
	gShedFloor  *telemetry.Gauge

	sub *telemetry.Sub[monitor.Event]
	dec *telemetry.Bus[Decision]

	mu sync.Mutex // serializes Step against itself (Run vs tests)
	// Previous-epoch snapshots (deltas are the signals).
	prevFlushSize  uint64
	prevFlushTimer uint64
	prevFill       telemetry.HistState
	prevBatches    uint64
	prevGather     []telemetry.HistState
	batchState     BatchState // slow-start memory for the batch loop
	qOver          int        // consecutive epochs over the queue high water
	qUnder         int        // consecutive epochs under half the high water
	qRaised        int        // shed-floor levels this loop owns (and may undo)
	tenants        map[string]*tenantSLO
	deathEWMA      float64
	lastDeathStage int
	out            []Decision // accumulates within one Step

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a controller. It resolves every telemetry handle up front (the
// registry is get-or-create, so construction order against the serving tier
// does not matter) and mirrors the actuators' current settings into the
// control knob gauges.
func New(cfg Config) *Controller {
	cfg.fill()
	reg := cfg.Registry
	c := &Controller{
		cfg:        cfg,
		flushSize:  reg.Counter(telemetry.MetricServeFlushes, telemetry.L("reason", telemetry.FlushReasonSize)),
		flushTimer: reg.Counter(telemetry.MetricServeFlushes, telemetry.L("reason", telemetry.FlushReasonTimer)),
		fill:       reg.Histogram(telemetry.MetricServeBatchFill),
		batches:    reg.Counter(telemetry.MetricEngineBatches),

		epochs:      reg.Counter(telemetry.MetricControlEpochs),
		gBatchMax:   reg.Gauge(telemetry.MetricControlBatchMax),
		gBatchDelay: reg.Gauge(telemetry.MetricControlBatchDelayNs),
		gInflight:   reg.Gauge(telemetry.MetricControlInflightWindow),
		gSpares:     reg.Gauge(telemetry.MetricControlSpareTarget),
		gShedFloor:  reg.Gauge(telemetry.MetricControlShedFloor),

		dec:     telemetry.NewBus[Decision](128),
		tenants: make(map[string]*tenantSLO),
	}
	if cfg.Pipeline != nil {
		n := len(cfg.Pipeline.Ladder())
		c.gather = make([]*telemetry.Histogram, n)
		c.prevGather = make([]telemetry.HistState, n)
		c.qdepth = make([]*telemetry.Gauge, n)
		for i := 0; i < n; i++ {
			c.gather[i] = reg.Histogram(telemetry.MetricEngineGatherNs,
				telemetry.L("stage", strconv.Itoa(i)))
			c.qdepth[i] = reg.Gauge(telemetry.MetricEngineQueueDepth,
				telemetry.L("stage", strconv.Itoa(i)))
		}
		c.gInflight.Set(int64(cfg.Pipeline.InflightWindow()))
	}
	if cfg.Frontend != nil {
		mb, md := cfg.Frontend.BatchWindow()
		c.gBatchMax.Set(int64(mb))
		c.gBatchDelay.Set(int64(md))
		c.gShedFloor.Set(int64(cfg.Frontend.ShedFloor()))
		for name, slo := range cfg.Frontend.TenantSLOs() {
			l := telemetry.L("tenant", name)
			c.tenants[name] = &tenantSLO{
				slo:    slo,
				hist:   reg.Histogram(telemetry.MetricServeLatencyNs, l),
				weight: reg.Gauge(telemetry.MetricControlTenantWeight, l),
				breach: reg.Counter(telemetry.MetricControlSLOBreaches, l),
			}
		}
	}
	if cfg.Spares != nil {
		c.gSpares.Set(int64(cfg.Spares.SpareCount()))
	}
	if cfg.Events != nil {
		c.sub = cfg.Events.Subscribe(256)
	}
	// Baseline the delta snapshots so the first epoch measures its own
	// window rather than all history before the controller attached.
	c.prevFlushSize = c.flushSize.Value()
	c.prevFlushTimer = c.flushTimer.Value()
	c.prevFill = c.fill.State()
	c.prevBatches = c.batches.Value()
	for i, h := range c.gather {
		c.prevGather[i] = h.State()
	}
	return c
}

// Decisions exposes the decision event bus (ring + fan-out; subscribers
// that fall behind lose events, the controller never blocks on them).
func (c *Controller) Decisions() *telemetry.Bus[Decision] { return c.dec }

// Start launches the epoch ticker goroutine. Idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		c.stop = make(chan struct{})
		c.done = make(chan struct{})
		go c.run()
	})
}

// Stop halts the ticker goroutine and closes the event subscription.
func (c *Controller) Stop() {
	if c.stop == nil {
		if c.sub != nil {
			c.sub.Close()
		}
		return
	}
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
	if c.sub != nil {
		c.sub.Close()
	}
}

func (c *Controller) run() {
	defer close(c.done)
	tick := time.NewTicker(c.cfg.Epoch)
	defer tick.Stop()
	last := time.Now()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tick.C:
			c.Step(now.Sub(last))
			last = now
		}
	}
}

// Step executes one control epoch over the telemetry accumulated in the
// last `elapsed` of wall time, returning the decisions it actuated (empty
// when every loop held). Exported so tests can drive the controller
// deterministically without the ticker.
func (c *Controller) Step(elapsed time.Duration) []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elapsed <= 0 {
		elapsed = c.cfg.Epoch
	}
	c.epochs.Inc()
	c.out = c.out[:0]
	deaths, replaceFailed := c.drainEvents()
	if !c.cfg.DisableBatch && c.cfg.Frontend != nil {
		c.stepBatch()
	}
	if !c.cfg.DisableInflight && c.cfg.Pipeline != nil {
		c.stepInflight(elapsed)
	}
	if !c.cfg.DisableSpares && c.cfg.Spares != nil {
		c.stepSpares(deaths, replaceFailed)
	}
	if !c.cfg.DisableSLO && c.cfg.Frontend != nil {
		c.stepSLO()
	}
	if !c.cfg.DisableQueueShed && c.cfg.Frontend != nil && len(c.qdepth) > 0 {
		c.stepQueueShed()
	}
	return append([]Decision(nil), c.out...)
}

// drainEvents consumes everything queued on the engine event subscription:
// variant deaths feed the spare-rate EWMA, a failed replacement flags pool
// exhaustion for an immediate provision.
func (c *Controller) drainEvents() (deaths int, replaceFailed bool) {
	if c.sub == nil {
		return 0, false
	}
	for {
		select {
		case ev := <-c.sub.C:
			switch ev.Kind {
			case monitor.EventVariantTimeout, monitor.EventVariantDown, monitor.EventVariantDropped:
				deaths++
				c.lastDeathStage = ev.Stage
			case monitor.EventReplaceFailed:
				replaceFailed = true
				c.lastDeathStage = ev.Stage
			}
		default:
			return deaths, replaceFailed
		}
	}
}

func (c *Controller) emit(d Decision) {
	c.cfg.Registry.Counter(telemetry.MetricControlDecisions,
		telemetry.L("loop", d.Loop), telemetry.L("direction", d.Direction)).Inc()
	c.dec.Publish(d)
	c.out = append(c.out, d)
}

func direction(from, to int64) string {
	if to > from {
		return "up"
	}
	return "down"
}

// stepBatch adapts the micro-batching window from the flush-reason mix and
// the batch-fill histogram (law in BatchLaw, slow-start memory in BatchStep).
func (c *Controller) stepBatch() {
	fs, ft := c.flushSize.Value(), c.flushTimer.Value()
	fill := c.fill.State()
	sig := BatchSignals{
		FlushSize:  fs - c.prevFlushSize,
		FlushTimer: ft - c.prevFlushTimer,
		MeanFill:   fill.Sub(c.prevFill).Mean(),
	}
	c.prevFlushSize, c.prevFlushTimer, c.prevFill = fs, ft, fill

	mb, md := c.cfg.Frontend.BatchWindow()
	cur := BatchKnobs{MaxBatch: mb, MaxDelay: md}
	next := BatchStep(sig, cur, c.cfg.Limits, &c.batchState)
	if next == cur {
		return
	}
	c.cfg.Frontend.SetBatchWindow(next.MaxBatch, next.MaxDelay)
	if next.MaxBatch != cur.MaxBatch {
		c.gBatchMax.Set(int64(next.MaxBatch))
		c.emit(Decision{Loop: telemetry.ControlLoopBatch, Knob: "max_batch",
			Direction: direction(int64(cur.MaxBatch), int64(next.MaxBatch)),
			From:      int64(cur.MaxBatch), To: int64(next.MaxBatch),
			Reason: "batch fill vs flush mix"})
	}
	if next.MaxDelay != cur.MaxDelay {
		c.gBatchDelay.Set(int64(next.MaxDelay))
		c.emit(Decision{Loop: telemetry.ControlLoopBatch, Knob: "max_delay_ns",
			Direction: direction(int64(cur.MaxDelay), int64(next.MaxDelay)),
			From:      int64(cur.MaxDelay), To: int64(next.MaxDelay),
			Reason: "batch fill vs flush mix"})
	}
}

// stepInflight sizes the engine's per-stage credit window by Little's law:
// arrival rate from the batch-counter delta, residence time from the p90 of
// the per-stage gather-latency histogram deltas (slowest stage wins).
func (c *Controller) stepInflight(elapsed time.Duration) {
	b := c.batches.Value()
	delta := b - c.prevBatches
	c.prevBatches = b
	var p90 uint64
	for i, h := range c.gather {
		st := h.State()
		d := st.Sub(c.prevGather[i])
		c.prevGather[i] = st
		if d.Count > 0 {
			if q := d.Quantile(0.90); q > p90 {
				p90 = q
			}
		}
	}
	cur := c.cfg.Pipeline.InflightWindow()
	if cur <= 0 {
		return // windowing disabled by deployment config: never impose one
	}
	if delta == 0 || p90 == 0 {
		return // idle epoch: no signal, hold
	}
	lambda := float64(delta) / elapsed.Seconds()
	target := LittleWindow(lambda, time.Duration(p90), c.cfg.Headroom)
	target = clampInt(target, c.cfg.Limits.MinWindow, c.cfg.Limits.MaxWindow)
	// Hysteresis: act only outside a ±25% (and at least ±1) band.
	band := cur / 4
	if band < 1 {
		band = 1
	}
	if target >= cur-band && target <= cur+band {
		return
	}
	c.cfg.Pipeline.SetInflightWindow(target)
	c.gInflight.Set(int64(target))
	c.emit(Decision{Loop: telemetry.ControlLoopInflight, Knob: "inflight_window",
		Direction: direction(int64(cur), int64(target)),
		From:      int64(cur), To: int64(target),
		Reason: "little's law from gather p90"})
}

// stepSpares tracks a death-rate EWMA and drifts the spare pool toward
// SpareTarget — at most one provision or retire per epoch, so a telemetry
// glitch cannot mass-launch enclaves. A failed replacement (pool was empty
// when a variant died) forces a provision regardless of the smoothed rate.
func (c *Controller) stepSpares(deaths int, replaceFailed bool) {
	c.deathEWMA = 0.5*c.deathEWMA + 0.5*float64(deaths)
	if c.deathEWMA < 0.0625 {
		// Snap the decayed tail to zero: ceil() in SpareTarget would
		// otherwise keep one phantom death alive forever.
		c.deathEWMA = 0
	}
	lim := c.cfg.Limits
	target := SpareTarget(c.deathEWMA, c.cfg.SpareLead, lim.MinSpares, lim.MaxSpares)
	cur := c.cfg.Spares.SpareCount()
	if replaceFailed && target <= cur {
		target = clampInt(cur+1, lim.MinSpares, lim.MaxSpares)
	}
	c.gSpares.Set(int64(target))
	switch {
	case cur < target:
		if err := c.cfg.Spares.ProvisionSpare(c.lastDeathStage); err == nil {
			c.emit(Decision{Loop: telemetry.ControlLoopSpares, Knob: "spare_pool",
				Direction: "up", From: int64(cur), To: int64(cur + 1),
				Reason: "death rate vs pool"})
		}
	case cur > target+1 && c.deathEWMA < 0.5:
		// Shrink only well past target and only when deaths have quieted —
		// the +1 gap is the scale-down hysteresis.
		if c.cfg.Spares.RetireSpare() {
			c.emit(Decision{Loop: telemetry.ControlLoopSpares, Knob: "spare_pool",
				Direction: "down", From: int64(cur), To: int64(cur - 1),
				Reason: "pool idle above target"})
		}
	}
}

// stepSLO compares each declared tenant's epoch p99 against its SLO.
// Escalation order: first grow the tenant's WRR weight (local, cheap), then
// — weight exhausted — raise the global shed floor, never past ShedToHigh
// (High-priority traffic is never controller-shed; and the floor only adds
// to the ladder-derived level, so the controller can never re-admit lanes
// the degradation ladder shed). De-escalation reverses: floor first, then
// weights back to their configured base.
func (c *Controller) stepSLO() {
	be := c.cfg.BreachEpochs
	allClean := len(c.tenants) > 0
	for name, t := range c.tenants {
		st := t.hist.State()
		d := st.Sub(t.prev)
		t.prev = st
		if d.Count == 0 {
			// No traffic: neither breach nor recovery evidence.
			if t.breached {
				allClean = false
			}
			continue
		}
		p99 := time.Duration(d.Quantile(0.99))
		if p99 > t.slo {
			t.breach.Inc()
			t.over++
			t.under = 0
			t.breached = true
			allClean = false
			if t.over >= be {
				t.over = 0
				c.escalate(name, t)
			}
		} else {
			t.under++
			t.over = 0
			if t.under >= be {
				t.breached = false
				if w := c.cfg.Frontend.TenantWeight(name); t.base > 0 && w > t.base && c.cfg.Frontend.ShedFloor() == serve.ShedNone {
					to := clampInt(w/2, t.base, c.cfg.Limits.MaxWeight)
					c.cfg.Frontend.SetTenantWeight(name, to)
					t.weight.Set(int64(to))
					c.emit(Decision{Loop: telemetry.ControlLoopSLO, Knob: "weight",
						Tenant: name, Direction: "down", From: int64(w), To: int64(to),
						Reason: "p99 back under SLO"})
				}
			}
			if t.breached {
				allClean = false
			}
		}
	}
	// The shed floor is global: lower it only when every SLO tenant has
	// been clean long enough.
	if allClean {
		for _, t := range c.tenants {
			if t.under < be {
				allClean = false
				break
			}
		}
	}
	if allClean {
		if floor := c.cfg.Frontend.ShedFloor(); floor > serve.ShedNone {
			c.cfg.Frontend.SetShedFloor(floor - 1)
			c.gShedFloor.Set(int64(floor - 1))
			c.emit(Decision{Loop: telemetry.ControlLoopSLO, Knob: "shed_floor",
				Direction: "down", From: int64(floor), To: int64(floor - 1),
				Reason: "all SLO tenants recovered"})
		}
	}
}

// escalate reacts to a sustained SLO breach for one tenant: double its WRR
// weight up to the clamp; once saturated, raise the global shed floor one
// level, capped at ShedToHigh.
func (c *Controller) escalate(name string, t *tenantSLO) {
	w := c.cfg.Frontend.TenantWeight(name)
	if w <= 0 {
		w = 1
	}
	if t.base == 0 {
		t.base = w // remember the configured weight to restore after recovery
	}
	if w < c.cfg.Limits.MaxWeight {
		to := clampInt(w*2, c.cfg.Limits.MinWeight, c.cfg.Limits.MaxWeight)
		c.cfg.Frontend.SetTenantWeight(name, to)
		t.weight.Set(int64(to))
		c.emit(Decision{Loop: telemetry.ControlLoopSLO, Knob: "weight",
			Tenant: name, Direction: "up", From: int64(w), To: int64(to),
			Reason: "sustained p99 over SLO"})
		return
	}
	if floor := c.cfg.Frontend.ShedFloor(); floor < serve.ShedToHigh {
		c.cfg.Frontend.SetShedFloor(floor + 1)
		c.gShedFloor.Set(int64(floor + 1))
		c.emit(Decision{Loop: telemetry.ControlLoopSLO, Knob: "shed_floor",
			Tenant: name, Direction: "up", From: int64(floor), To: int64(floor + 1),
			Reason: "weight saturated, shedding low lanes"})
	}
}

// stepQueueShed raises the shed floor from the per-stage queue-depth gauges —
// a leading indicator. The SLO loop reacts to latency histograms, which only
// breach after queued work has already drained through the pipeline; the
// queue loop sheds while the backlog is still forming, so low-priority lanes
// are turned away before their latency is spent. It only ever undoes its own
// escalations (qRaised), so it cannot re-admit lanes the SLO loop or the
// degradation ladder shed.
func (c *Controller) stepQueueShed() {
	var depth int64
	for _, g := range c.qdepth {
		if v := g.Value(); v > depth {
			depth = v
		}
	}
	hw := int64(c.cfg.QueueHighWater)
	floor := c.cfg.Frontend.ShedFloor()
	if floor == serve.ShedNone {
		// Someone (the SLO loop, an operator) already unwound the floor:
		// nothing left for this loop to undo.
		c.qRaised = 0
	}
	be := c.cfg.BreachEpochs
	switch {
	case depth > hw:
		c.qOver++
		c.qUnder = 0
		if c.qOver >= be {
			c.qOver = 0
			if floor < serve.ShedToHigh {
				c.cfg.Frontend.SetShedFloor(floor + 1)
				c.gShedFloor.Set(int64(floor + 1))
				c.qRaised++
				c.emit(Decision{Loop: telemetry.ControlLoopQueue, Knob: "shed_floor",
					Direction: "up", From: int64(floor), To: int64(floor + 1),
					Reason: "stage queue depth over high water"})
			}
		}
	case depth*2 <= hw:
		c.qUnder++
		c.qOver = 0
		if c.qUnder >= be && c.qRaised > 0 {
			c.qUnder = 0
			c.qRaised--
			if floor > serve.ShedNone {
				c.cfg.Frontend.SetShedFloor(floor - 1)
				c.gShedFloor.Set(int64(floor - 1))
				c.emit(Decision{Loop: telemetry.ControlLoopQueue, Knob: "shed_floor",
					Direction: "down", From: int64(floor), To: int64(floor - 1),
					Reason: "stage queues drained"})
			}
		}
	default:
		// Between half and full high water: hold, and require fresh
		// consecutive evidence before moving either way.
		c.qOver, c.qUnder = 0, 0
	}
}
