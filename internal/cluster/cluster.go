// Package cluster is the distributed multi-variant tier: a Router that
// fronts N replica engines — in-process or remote mvtee-monitor processes
// reached over securechan — behind one serving front door.
//
// Each replica is a complete MVX engine (monitor + diversified variant set).
// For every batch the router picks a leader by least-loaded placement over a
// rendezvous-hash candidate order, and optionally a set of follower replicas
// that cross-check the leader's work. The headline optimization is
// dMVX-style selective result forwarding: followers execute the batch on
// their own diversified variants but ship back a 32-byte checkpoint digest
// vote instead of their output tensors, and the leader's digest reaches them
// as one encode-once 46-byte announce frame — the steady-state cross-node
// verification cost is O(digest bytes), not O(activation bytes). Digest
// equality is a sound verdict because the kernels are bitwise-deterministic
// across backends and parallelism (PR 1); deployments without that property
// run the tier in TensorForward mode, which ships and compares full outputs
// (the naive baseline the cluster/ bench family measures against).
//
// Replica health is driven by the degradation ladder: a replica whose
// engine demotes to halted stops receiving new batches, and its in-flight
// batches fail over to a healthy peer under the router's stable batch-ID
// namespace, so the serving tier's demux never sees a duplicate or dropped
// row. The Router implements both serve.Engine (drop-in behind the
// admission plane) and control.Pipeline (the controller's knob actuations
// fan out to every replica, scoped per replica over the wire).
package cluster

import (
	"errors"

	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// ForwardMode selects how follower replicas report their cross-check.
type ForwardMode int

const (
	// DigestForward ships 32-byte checkpoint digests between nodes
	// (selective result forwarding). The default.
	DigestForward ForwardMode = iota
	// TensorForward ships followers' full output tensors back to the router
	// for tolerance-band comparison — the naive replication baseline, and
	// the fallback when variant runtimes are not bitwise-deterministic.
	TensorForward
)

// Replica is the router's handle to one engine replica. Implementations are
// provided by this package (NewLocal, NewRemote); the interface is sealed so
// the router can evolve the internal protocol.
type Replica interface {
	// ID is the replica's stable identity (placement hashes over it).
	ID() string
	// Hello describes the replica's model interface and variant set.
	Hello() wire.ReplicaHello
	// InflightWindow reports the replica engine's current per-stage credit
	// window; SetInflightWindow retunes it (over the wire for remotes).
	InflightWindow() int
	SetInflightWindow(n int)
	// Close releases the replica handle (remote: closes the connection).
	Close() error

	// attach wires the replica to its router; tracer is the router's span
	// ring, so an in-process replica whose engine already records there can
	// skip re-shipping its spans. submit/announce carry the encoded payloads
	// of the data and verification planes and report the payload bytes that
	// actually crossed a connection (zero for in-process replicas), feeding
	// the router's forward-bytes accounting; trace is the router-minted
	// federation trace ID (zero when tracing is off for the batch).
	attach(idx int, events chan<- replicaEvent, tracer *telemetry.Tracer)
	submit(rid, trace uint64, enc []byte, inputs map[string]*tensor.Tensor, verify bool) (int, error)
	announce(enc []byte, d *wire.Digest) (int, error)
	// pollMetrics requests the replica registry's snapshot (metrics
	// federation); the answer arrives as a metrics event. Best-effort.
	pollMetrics(seq uint64)
}

// replicaEvent is one upcall from a replica to the router loop. Exactly one
// of the payload fields is set.
type replicaEvent struct {
	idx     int
	res     *monitor.BatchResult // completed batch (router ID namespace)
	vote    *wire.Digest         // verification-plane frame (vote or stage digest)
	status  *wire.ReplicaStatus  // health heartbeat
	spans   *wire.SpanReport     // harvested batch spans (trace federation)
	metrics *wire.MetricsReport  // registry snapshot (metrics federation)
	down    error                // replica lost (connection/engine failure)
	// localVote marks a vote whose Agree field is unresolved: in-process
	// followers hand the router their raw digest and the router compares it
	// against the leader's (remote followers compare locally and send an
	// authoritative verdict).
	localVote bool
	// wireBytes is the payload size of the frame this event decoded from,
	// zero for in-process replicas.
	wireBytes int
}

// ErrNoHealthyReplica rejects submissions when every replica is down or
// halted.
var ErrNoHealthyReplica = errors.New("cluster: no healthy replica")

// ErrDivergence fails a batch whose follower cross-check dissented in
// synchronous mode.
var ErrDivergence = errors.New("cluster: cross-replica digest divergence")
