package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// newTracedClusterEngine is newClusterEngine with a private span ring: the
// federation tests give every replica engine its own tracer so the only way
// its spans can appear in the router's ring is through the SpanReport plane.
func newTracedClusterEngine(t testing.TB, die func(in map[string]*tensor.Tensor) bool, tr *telemetry.Tracer) *monitor.Engine {
	t.Helper()
	handles := make([]*monitor.Handle, 3)
	for i := range handles {
		handles[i] = (&e2eVariant{id: fmt.Sprintf("v%d", i), die: die}).start(t)
	}
	eng, err := monitor.NewEngine(monitor.EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"y"},
		Stages: []monitor.StageSpec{{
			Inputs:  []string{"x"},
			Outputs: []string{"y"},
			Handles: handles,
		}},
		Metrics: telemetry.NewRegistry(),
		Tracer:  tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	t.Cleanup(eng.Stop)
	return eng
}

// startRemoteReplicaOpts is startRemoteReplica with caller-chosen server
// options (federated registry, span bounds).
func startRemoteReplicaOpts(t testing.TB, eng *monitor.Engine, opts ReplicaServerOptions) *Remote {
	t.Helper()
	routerC, replicaC := net.Pipe()
	go func() {
		conn, err := securechan.Server(replicaC, nil, nil)
		if err != nil {
			return
		}
		_ = ServeReplica(conn, eng, opts)
	}()
	cc, err := securechan.Client(routerC, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rem, err := NewRemote(cc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rem.Close() })
	return rem
}

// TestClusterTraceFederationE2E drives the full span-federation loop over the
// wire: two remote replicas whose engines record into private rings, so every
// span the router's ring holds for them arrived as a SpanReport frame. Every
// batch's trace must assemble the complete cross-node tree — the router's own
// route/dispatch spans plus the execution spans of both replicas (leader and
// cross-checking follower) — and the tree must stay intact through a
// mid-burst leader kill: failed-over batches keep their trace ID, so the
// surviving replica's spans land in the same tree as the failed attempt's.
func TestClusterTraceFederationE2E(t *testing.T) {
	const poison = float32(1313)
	trA, trB := telemetry.NewTracer(4096), telemetry.NewTracer(4096)
	engA := newTracedClusterEngine(t, nil, trA)
	engB := newTracedClusterEngine(t, func(in map[string]*tensor.Tensor) bool {
		for _, v := range in["x"].Data() {
			if v == poison {
				return true
			}
		}
		return false
	}, trB)
	repA := startRemoteReplica(t, "replica-a", engA)
	repB := startRemoteReplica(t, "replica-b", engB)

	reg := telemetry.NewRegistry()
	rtr := telemetry.NewTracer(8192)
	router, err := NewRouter(RouterConfig{
		Replicas:        []Replica{repA, repB},
		Verify:          1,
		Sync:            true,
		VoteTimeout:     500 * time.Millisecond,
		Metrics:         reg,
		Tracer:          rtr,
		MetricsInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = router.Close() })

	// nodesFor maps a batch ID to the set of nodes contributing spans to its
	// trace ("" is the router itself).
	nodesFor := func(id uint64) map[string]bool {
		spans := rtr.Snapshot()
		var trace uint64
		for _, s := range spans {
			if s.Batch == id && s.Name == "route" && s.Replica == "" {
				trace = s.Trace
			}
		}
		if trace == 0 {
			return nil
		}
		nodes := map[string]bool{}
		for _, s := range spans {
			if s.Trace == trace {
				nodes[s.Replica] = true
			}
		}
		return nodes
	}

	// Phase 1: sequential batches while both replicas are healthy. Each trace
	// must federate router spans plus both replicas' (one led, one verified).
	for i := 0; i < 8; i++ {
		v := float32(i + 1)
		id, err := router.Submit(testInputs(v))
		if err != nil {
			t.Fatal(err)
		}
		row := readRow(t, router)
		if row.ID != id || row.Err != nil {
			t.Fatalf("batch %d: got row %d err=%v", id, row.ID, row.Err)
		}
		if got := row.Tensors["y"].At(0, 0); got != 2*v {
			t.Fatalf("batch %d: y=%v want %v", id, got, 2*v)
		}
		waitUntil(t, fmt.Sprintf("batch %d spans from router and both replicas", id), func() bool {
			n := nodesFor(id)
			return n[""] && n["replica-a"] && n["replica-b"]
		})
	}

	// The merged replica spans include the engines' root "batch" spans, and
	// their Replica stamp came from the report header, not the wire payload.
	foundBatchSpan := false
	for _, s := range rtr.Snapshot() {
		if s.Name == "batch" && (s.Replica == "replica-a" || s.Replica == "replica-b") {
			foundBatchSpan = true
			break
		}
	}
	if !foundBatchSpan {
		t.Fatal("no replica-side engine 'batch' span federated into the router ring")
	}

	// Phase 2: a rapid burst with a poisoned batch mid-stream. The poison
	// kills replica B's whole variant set; B-led in-flight batches fail over
	// to A under their original IDs and trace IDs.
	const burst = 30
	ids := make(map[uint64]float32, burst)
	burstIDs := make([]uint64, 0, burst)
	for i := 0; i < burst; i++ {
		v := float32(100 + i)
		if i == 8 {
			v = poison
		}
		id, err := router.Submit(testInputs(v))
		if err != nil {
			t.Fatal(err)
		}
		ids[id] = v
		burstIDs = append(burstIDs, id)
	}
	for i := 0; i < burst; i++ {
		var row monitor.BatchResult
		select {
		case row = <-router.Outputs():
		case <-time.After(20 * time.Second):
			t.Fatalf("no result row for burst batch %d/%d (failovers=%d)", i, burst,
				reg.Counter(telemetry.MetricClusterFailovers).Value())
		}
		v, ok := ids[row.ID]
		if !ok {
			t.Fatalf("unknown or duplicate row ID %d", row.ID)
		}
		delete(ids, row.ID)
		if row.Err != nil {
			t.Fatalf("batch %d (v=%v) failed: %v", row.ID, v, row.Err)
		}
		if got := row.Tensors["y"].At(0, 0); got != 2*v {
			t.Fatalf("batch %d: y=%v want %v", row.ID, got, 2*v)
		}
	}
	waitUntil(t, "a failover during the poisoned burst", func() bool {
		return reg.Counter(telemetry.MetricClusterFailovers).Value() >= 1
	})

	// Trace continuity through the kill: every burst batch — including the
	// failed-over ones — still assembles router spans plus the surviving
	// replica's execution spans under one trace ID.
	for _, id := range burstIDs {
		waitUntil(t, fmt.Sprintf("burst batch %d spans from router and replica-a", id), func() bool {
			n := nodesFor(id)
			return n[""] && n["replica-a"]
		})
	}

	// The span plane was exercised and accounted on its own counters.
	if reg.Counter(telemetry.MetricClusterSpanReports).Value() == 0 {
		t.Fatal("no span reports counted")
	}
	if reg.Counter(telemetry.MetricClusterSpansMerged).Value() == 0 {
		t.Fatal("no merged spans counted")
	}
	if reg.Counter(telemetry.MetricClusterSpanBytes).Value() == 0 {
		t.Fatal("no span-plane bytes counted")
	}
	t.Logf("failovers=%d span_reports=%d spans_merged=%d span_bytes=%d",
		reg.Counter(telemetry.MetricClusterFailovers).Value(),
		reg.Counter(telemetry.MetricClusterSpanReports).Value(),
		reg.Counter(telemetry.MetricClusterSpansMerged).Value(),
		reg.Counter(telemetry.MetricClusterSpanBytes).Value())
}

// TestClusterMetricsFederation exercises both poll paths: a Local replica
// answering from its configured registry synchronously, and a remote replica
// whose snapshot rides MetricsPoll/MetricsReport frames over the status
// channel. ClusterMetrics must surface both with their series intact.
func TestClusterMetricsFederation(t *testing.T) {
	engA := newClusterEngine(t, nil)
	engB := newClusterEngine(t, nil)

	regA := telemetry.NewRegistry()
	regA.Counter("test_local_batches_total").Add(7)
	local := NewLocal("local-a", engA, LocalOptions{
		Hello:   wire.ReplicaHello{GraphInputs: []string{"x"}, GraphOutputs: []string{"y"}},
		Metrics: regA,
	})

	regB := telemetry.NewRegistry()
	regB.Gauge("test_remote_queue").Set(3)
	regB.Histogram("test_remote_ns").Observe(1000)
	remote := startRemoteReplicaOpts(t, engB, ReplicaServerOptions{
		Hello: wire.ReplicaHello{
			ID:           "remote-b",
			Variants:     3,
			GraphInputs:  []string{"x"},
			GraphOutputs: []string{"y"},
		},
		Metrics: regB,
	})

	reg := telemetry.NewRegistry()
	router, err := NewRouter(RouterConfig{
		Replicas:        []Replica{local, remote},
		Metrics:         reg,
		Tracer:          telemetry.NewTracer(64),
		MetricsInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = router.Close() })

	series := func(rep, name string) *telemetry.MetricSnapshot {
		for _, rm := range router.ClusterMetrics() {
			if rm.Replica != rep {
				continue
			}
			for i := range rm.Series {
				if rm.Series[i].Name == name {
					return &rm.Series[i]
				}
			}
		}
		return nil
	}
	waitUntil(t, "both replicas federate metrics", func() bool {
		return series("local-a", "test_local_batches_total") != nil &&
			series("remote-b", "test_remote_ns") != nil
	})

	if s := series("local-a", "test_local_batches_total"); s.Kind != "counter" || s.Value != 7 {
		t.Fatalf("local counter snapshot = %+v, want counter value 7", s)
	}
	if s := series("remote-b", "test_remote_queue"); s == nil || s.Kind != "gauge" || s.Value != 3 {
		t.Fatalf("remote gauge snapshot = %+v, want gauge value 3", s)
	}
	if s := series("remote-b", "test_remote_ns"); s.Kind != "histogram" || s.Count != 1 {
		t.Fatalf("remote histogram snapshot = %+v, want histogram count 1", s)
	}
	if reg.Counter(telemetry.MetricClusterMetricPolls).Value() == 0 {
		t.Fatal("no metric polls counted")
	}
	for _, rm := range router.ClusterMetrics() {
		if rm.Age < 0 || rm.Age > time.Minute {
			t.Fatalf("replica %s snapshot age %v out of range", rm.Replica, rm.Age)
		}
	}
}

// TestClusterLocalSharedTracerNoDuplicateSpans pins the single-process
// deployment's dedup rule: when a Local replica's engine records into the
// router's own ring, its spans are already co-resident and must not be
// re-shipped as span reports (which would double-count every span).
func TestClusterLocalSharedTracerNoDuplicateSpans(t *testing.T) {
	shared := telemetry.NewTracer(1024)
	eng := newTracedClusterEngine(t, nil, shared)
	local := NewLocal("local-a", eng, LocalOptions{
		Hello: wire.ReplicaHello{GraphInputs: []string{"x"}, GraphOutputs: []string{"y"}},
	})

	reg := telemetry.NewRegistry()
	router, err := NewRouter(RouterConfig{
		Replicas:        []Replica{local},
		Metrics:         reg,
		Tracer:          shared,
		MetricsInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = router.Close() })

	id, err := router.Submit(testInputs(2))
	if err != nil {
		t.Fatal(err)
	}
	row := readRow(t, router)
	if row.ID != id || row.Err != nil {
		t.Fatalf("row %d err=%v", row.ID, row.Err)
	}
	var trace uint64
	waitUntil(t, "route span in the shared ring", func() bool {
		for _, s := range shared.Snapshot() {
			if s.Batch == id && s.Name == "route" {
				trace = s.Trace
				return true
			}
		}
		return false
	})
	// Give a (wrongly emitted) span report time to arrive, then count.
	time.Sleep(20 * time.Millisecond)
	batchSpans := 0
	for _, s := range shared.Snapshot() {
		if s.Trace != trace {
			continue
		}
		if s.Replica != "" {
			t.Fatalf("span %q re-shipped with replica stamp %q — shared-ring dedup broken", s.Name, s.Replica)
		}
		if s.Name == "batch" {
			batchSpans++
		}
	}
	if batchSpans != 1 {
		t.Fatalf("trace holds %d engine 'batch' spans, want exactly 1", batchSpans)
	}
	if n := reg.Counter(telemetry.MetricClusterSpanReports).Value(); n != 0 {
		t.Fatalf("%d span reports from a shared-ring local replica, want 0", n)
	}
}

// TestClusterFailoverFlightIncident is the leader-kill chaos check for the
// flight recorder: killing the leader mid-batch must leave one complete
// incident — reason replica_down, a non-empty before-window, a full
// after-window that captured the degraded state, and the follow-on failover
// trigger coalesced into a note rather than opening an overlapping record.
func TestClusterFailoverFlightIncident(t *testing.T) {
	a, b := newFake("a"), newFake("b")
	freg := telemetry.NewRegistry()
	// Incidents ship to the serving event bus exactly as mvtee-serve wires
	// them, so a live /events subscriber sees the freeze as it happens.
	bus := telemetry.NewBus[monitor.Event](16)
	sub := bus.Subscribe(4)
	t.Cleanup(sub.Close)
	fr := telemetry.NewFlightRecorder(telemetry.FlightConfig{
		Interval:    2 * time.Millisecond,
		Window:      16,
		PostSamples: 4,
		Metrics:     freg,
		OnIncident: func(inc telemetry.Incident) {
			bus.Publish(monitor.Event{
				Kind:   monitor.EventFlightIncident,
				Stage:  -1,
				Detail: inc.Reason,
				Time:   time.Unix(0, inc.At),
			})
		},
	})
	var up atomic.Int64
	up.Store(2)
	fr.AddSource("replicas_up", up.Load)
	fr.Start()
	t.Cleanup(fr.Stop)

	reg := telemetry.NewRegistry()
	router, err := NewRouter(RouterConfig{
		Replicas:        []Replica{a, b},
		Verify:          1,
		Metrics:         reg,
		Tracer:          telemetry.NewTracer(64),
		MetricsInterval: -1,
		Flight:          fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = router.Close() })

	// Let the sampler build a before-window, then kill the leader mid-batch.
	time.Sleep(20 * time.Millisecond)
	id, err := router.Submit(testInputs(1))
	if err != nil {
		t.Fatal(err)
	}
	lead, follow := leaderAndFollower(t, a, b)
	up.Store(1)
	lead.post(replicaEvent{down: errors.New("chaos: leader killed")})
	waitUntil(t, "failover resubmission", func() bool { return follow.subCount() >= 2 })
	follow.post(replicaEvent{res: &monitor.BatchResult{ID: follow.lastSub(t).rid, Tensors: testOutputs(1)}})
	row := readRow(t, router)
	if row.ID != id || row.Err != nil {
		t.Fatalf("failed-over batch: row %d err=%v", row.ID, row.Err)
	}

	waitUntil(t, "a complete flight incident", func() bool {
		incs := fr.Incidents()
		return len(incs) == 1 && incs[0].Complete
	})
	inc := fr.Incidents()[0]
	if inc.Reason != telemetry.FlightReasonReplicaDown {
		t.Fatalf("incident reason %q, want %q", inc.Reason, telemetry.FlightReasonReplicaDown)
	}
	if len(inc.Before) == 0 {
		t.Fatal("incident has no before-window — the ring was empty at trigger time")
	}
	if len(inc.After) != 4 {
		t.Fatalf("after-window has %d samples, want 4", len(inc.After))
	}
	if last := inc.After[len(inc.After)-1]; last.Values[0] != 1 {
		t.Fatalf("after-window missed the replica loss: last sample %v, want replicas_up=1", last.Values)
	}
	coalesced := false
	for _, n := range inc.Notes {
		if n.Text == "trigger: "+telemetry.FlightReasonFailover {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatalf("failover trigger not coalesced into the open incident; notes: %v", inc.Notes)
	}
	if n := freg.Counter(telemetry.MetricFlightIncidents,
		telemetry.L("reason", telemetry.FlightReasonReplicaDown)).Value(); n != 1 {
		t.Fatalf("replica_down incident counter = %d, want 1", n)
	}

	// The live subscriber saw the incident on the event bus (coalesced
	// re-triggers ship nothing, so exactly one event arrives).
	select {
	case ev := <-sub.C:
		if ev.Kind != monitor.EventFlightIncident || ev.Detail != telemetry.FlightReasonReplicaDown {
			t.Fatalf("bus event = %+v, want flight-incident replica_down", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("incident never reached the event bus")
	}
	select {
	case ev := <-sub.C:
		t.Fatalf("unexpected second bus event %+v — coalesced trigger re-shipped", ev)
	default:
	}
}
