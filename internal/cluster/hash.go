package cluster

import "hash/fnv"

// rendezvousOrder returns replica indices ordered by descending
// rendezvous-hash score for the placement key: the stable per-model
// candidate order that placement walks. Every router for the same key and
// replica set computes the same order, so a model's traffic concentrates on
// the same preferred replicas (warm caches, pinned weights) without any
// coordination; least-loaded selection among the healthy candidates then
// spreads bursts across the order.
func rendezvousOrder(key string, ids []string) []int {
	type scored struct {
		idx   int
		score uint64
	}
	sc := make([]scored, len(ids))
	for i, id := range ids {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(id))
		sc[i] = scored{idx: i, score: h.Sum64()}
	}
	// Insertion sort: replica sets are small (single digits).
	for i := 1; i < len(sc); i++ {
		for j := i; j > 0 && sc[j].score > sc[j-1].score; j-- {
			sc[j], sc[j-1] = sc[j-1], sc[j]
		}
	}
	order := make([]int, len(sc))
	for i, s := range sc {
		order[i] = s.idx
	}
	return order
}
