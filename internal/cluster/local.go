package cluster

import (
	"sync"

	"repro/internal/check"
	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Local wraps an in-process engine as a cluster replica: single-node
// multi-replica deployments (one engine per NUMA partition), tests and
// benches. The verification plane needs no wire hops — a follower execution
// hands the router its raw digest and the router compares it against the
// leader's directly.
type Local struct {
	id      string
	eng     *monitor.Engine
	hello   wire.ReplicaHello
	spares  func() int
	metrics *telemetry.Registry

	idx    int
	events chan<- replicaEvent
	// routerTracer is the router's span ring (set at attach): when the
	// engine records into a different ring, this replica's spans must ship
	// over as span events like a remote's would; when they share one ring
	// (both on DefaultTracer, the single-process default) the spans are
	// already co-resident and re-shipping would duplicate them.
	routerTracer *telemetry.Tracer
	stop         chan struct{}
	wg           sync.WaitGroup

	mu      sync.Mutex
	subs    map[uint64]localSub            // engine batch ID -> router submission
	orphans map[uint64]monitor.BatchResult // completed before submit registered
}

type localSub struct {
	rid    uint64
	trace  uint64 // router-minted federation trace ID (zero: tracing off)
	verify bool
}

// LocalOptions configures NewLocal beyond the engine itself.
type LocalOptions struct {
	// Hello advertises the model interface (serve-door validation). ID,
	// Stages, Variants and InflightWindow are filled from the engine.
	Hello wire.ReplicaHello
	// Spares reports the replica's spare pool size for status heartbeats;
	// nil reports zero.
	Spares func() int
	// Metrics answers the router's metrics-federation polls (typically the
	// engine's own registry); nil reports nothing.
	Metrics *telemetry.Registry
}

// NewLocal builds an in-process replica over a started engine.
func NewLocal(id string, eng *monitor.Engine, opts LocalOptions) *Local {
	h := opts.Hello
	h.ID = id
	h.Stages = len(eng.Ladder())
	sp := opts.Spares
	if sp == nil {
		sp = func() int { return 0 }
	}
	return &Local{
		id:      id,
		eng:     eng,
		hello:   h,
		spares:  sp,
		metrics: opts.Metrics,
		stop:    make(chan struct{}),
		subs:    make(map[uint64]localSub),
		orphans: make(map[uint64]monitor.BatchResult),
	}
}

func (l *Local) ID() string               { return l.id }
func (l *Local) Hello() wire.ReplicaHello { return l.hello }
func (l *Local) InflightWindow() int      { return l.eng.InflightWindow() }
func (l *Local) SetInflightWindow(n int)  { l.eng.SetInflightWindow(n) }

// Close detaches the replica from the router. The engine is owned by the
// caller and keeps running.
func (l *Local) Close() error {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	l.wg.Wait()
	return nil
}

func (l *Local) attach(idx int, events chan<- replicaEvent, tracer *telemetry.Tracer) {
	l.idx, l.events, l.routerTracer = idx, events, tracer
	l.wg.Add(2)
	go l.pumpOutputs()
	go l.pumpStatus()
}

func (l *Local) post(ev replicaEvent) {
	ev.idx = l.idx
	select {
	case l.events <- ev:
	case <-l.stop:
	}
}

func (l *Local) status() *wire.ReplicaStatus {
	ladder := l.eng.Ladder()
	st := &wire.ReplicaStatus{Ladder: make([]int, len(ladder)), Spares: l.spares()}
	for i, r := range ladder {
		st.Ladder[i] = int(r)
	}
	return st
}

// pumpOutputs translates engine completions into router events: primary
// batches become results, verify batches become digest votes. An engine
// whose output channel closes (stopped or halted fatally) reports the
// replica down so the router fails its in-flight batches over.
func (l *Local) pumpOutputs() {
	defer l.wg.Done()
	for {
		select {
		case br, ok := <-l.eng.Outputs():
			if !ok {
				l.post(replicaEvent{down: monitor.ErrEngineStopped})
				return
			}
			l.mu.Lock()
			sub, ok := l.subs[br.ID]
			if ok {
				delete(l.subs, br.ID)
			} else {
				// Completed before submit registered the mapping: park it;
				// submit delivers on its way out. Requires the engine to be
				// dedicated to this replica (every batch is ours).
				l.orphans[br.ID] = br
			}
			l.mu.Unlock()
			if ok {
				l.deliver(br, sub)
			}
		case <-l.stop:
			return
		}
	}
}

// pumpStatus pushes a health heartbeat at attach and after every
// ladder-relevant engine event.
func (l *Local) pumpStatus() {
	defer l.wg.Done()
	sub := l.eng.EventBus().Subscribe(64)
	defer sub.Close()
	l.post(replicaEvent{status: l.status()})
	for {
		select {
		case ev := <-sub.C:
			switch ev.Kind {
			case monitor.EventLadderDemoted, monitor.EventLadderPromoted,
				monitor.EventVariantDown, monitor.EventVariantDropped,
				monitor.EventVariantTimeout, monitor.EventVariantReplaced,
				monitor.EventSpareProvisioned:
				l.post(replicaEvent{status: l.status()})
			}
		case <-l.stop:
			return
		}
	}
}

// deliver translates one engine completion into a router event: results for
// primary batches, digest votes for cross-check batches.
func (l *Local) deliver(br monitor.BatchResult, sub localSub) {
	if !sub.verify {
		if br.Err != nil {
			// Refresh health ahead of the error so the router's failover
			// decision sees the demotion that caused it, not a stale ladder.
			l.post(replicaEvent{status: l.status()})
		}
		br.ID = sub.rid
		l.post(replicaEvent{res: &br})
		l.reportSpans(sub)
		return
	}
	defer l.reportSpans(sub)
	v := &wire.Digest{ID: sub.rid, Stage: -1, Vote: true}
	if br.Err == nil {
		v.Sum = check.DigestOf(br.Tensors)
	} // an erroring follower abstains: zero digest
	l.post(replicaEvent{vote: v, localVote: true})
}

// reportSpans is the in-process half of trace federation: only needed when
// the engine records into its own ring (NUMA-partitioned deployments give
// each engine a private tracer) — with a shared ring the router already
// holds these spans and shipping them again would double-count.
func (l *Local) reportSpans(sub localSub) {
	if sub.trace == 0 || !telemetry.Enabled() {
		return
	}
	tr := l.eng.Tracer()
	if tr == l.routerTracer {
		return
	}
	spans := tr.SpansForRecent(sub.trace, spanScanWindow, 64)
	if len(spans) == 0 {
		return
	}
	l.post(replicaEvent{spans: &wire.SpanReport{ID: sub.rid, Replica: l.id, Spans: spans}})
}

func (l *Local) submit(rid, trace uint64, _ []byte, inputs map[string]*tensor.Tensor, verify bool) (int, error) {
	// The engine ID is unknown until Submit returns, so a fast completion can
	// beat the mapping into l.subs: the pump parks such results in l.orphans
	// and the registration below picks them up. Holding l.mu across Submit
	// instead would deadlock — Submit blocks on engine capacity, which frees
	// only when the pump (also needing l.mu) drains Outputs.
	eid, err := l.eng.SubmitTraced(inputs, trace)
	if err != nil {
		return 0, err
	}
	sub := localSub{rid: rid, trace: trace, verify: verify}
	l.mu.Lock()
	br, raced := l.orphans[eid]
	if raced {
		delete(l.orphans, eid)
	} else {
		l.subs[eid] = sub
	}
	l.mu.Unlock()
	if raced {
		l.deliver(br, sub)
	}
	return 0, nil
}

// announce is a no-op for in-process replicas: their votes carry the raw
// digest and the router compares against the leader's without a wire hop.
func (l *Local) announce([]byte, *wire.Digest) (int, error) { return 0, nil }

// pollMetrics answers the router's federation poll synchronously from the
// configured registry; replicas without one report nothing.
func (l *Local) pollMetrics(seq uint64) {
	if l.metrics == nil {
		return
	}
	l.post(replicaEvent{metrics: &wire.MetricsReport{Seq: seq, Series: l.metrics.Snapshot()}})
}
