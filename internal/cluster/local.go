package cluster

import (
	"sync"

	"repro/internal/check"
	"repro/internal/monitor"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Local wraps an in-process engine as a cluster replica: single-node
// multi-replica deployments (one engine per NUMA partition), tests and
// benches. The verification plane needs no wire hops — a follower execution
// hands the router its raw digest and the router compares it against the
// leader's directly.
type Local struct {
	id     string
	eng    *monitor.Engine
	hello  wire.ReplicaHello
	spares func() int

	idx    int
	events chan<- replicaEvent
	stop   chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	subs    map[uint64]localSub            // engine batch ID -> router submission
	orphans map[uint64]monitor.BatchResult // completed before submit registered
}

type localSub struct {
	rid    uint64
	verify bool
}

// LocalOptions configures NewLocal beyond the engine itself.
type LocalOptions struct {
	// Hello advertises the model interface (serve-door validation). ID,
	// Stages, Variants and InflightWindow are filled from the engine.
	Hello wire.ReplicaHello
	// Spares reports the replica's spare pool size for status heartbeats;
	// nil reports zero.
	Spares func() int
}

// NewLocal builds an in-process replica over a started engine.
func NewLocal(id string, eng *monitor.Engine, opts LocalOptions) *Local {
	h := opts.Hello
	h.ID = id
	h.Stages = len(eng.Ladder())
	sp := opts.Spares
	if sp == nil {
		sp = func() int { return 0 }
	}
	return &Local{
		id:      id,
		eng:     eng,
		hello:   h,
		spares:  sp,
		stop:    make(chan struct{}),
		subs:    make(map[uint64]localSub),
		orphans: make(map[uint64]monitor.BatchResult),
	}
}

func (l *Local) ID() string               { return l.id }
func (l *Local) Hello() wire.ReplicaHello { return l.hello }
func (l *Local) InflightWindow() int      { return l.eng.InflightWindow() }
func (l *Local) SetInflightWindow(n int)  { l.eng.SetInflightWindow(n) }

// Close detaches the replica from the router. The engine is owned by the
// caller and keeps running.
func (l *Local) Close() error {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	l.wg.Wait()
	return nil
}

func (l *Local) attach(idx int, events chan<- replicaEvent) {
	l.idx, l.events = idx, events
	l.wg.Add(2)
	go l.pumpOutputs()
	go l.pumpStatus()
}

func (l *Local) post(ev replicaEvent) {
	ev.idx = l.idx
	select {
	case l.events <- ev:
	case <-l.stop:
	}
}

func (l *Local) status() *wire.ReplicaStatus {
	ladder := l.eng.Ladder()
	st := &wire.ReplicaStatus{Ladder: make([]int, len(ladder)), Spares: l.spares()}
	for i, r := range ladder {
		st.Ladder[i] = int(r)
	}
	return st
}

// pumpOutputs translates engine completions into router events: primary
// batches become results, verify batches become digest votes. An engine
// whose output channel closes (stopped or halted fatally) reports the
// replica down so the router fails its in-flight batches over.
func (l *Local) pumpOutputs() {
	defer l.wg.Done()
	for {
		select {
		case br, ok := <-l.eng.Outputs():
			if !ok {
				l.post(replicaEvent{down: monitor.ErrEngineStopped})
				return
			}
			l.mu.Lock()
			sub, ok := l.subs[br.ID]
			if ok {
				delete(l.subs, br.ID)
			} else {
				// Completed before submit registered the mapping: park it;
				// submit delivers on its way out. Requires the engine to be
				// dedicated to this replica (every batch is ours).
				l.orphans[br.ID] = br
			}
			l.mu.Unlock()
			if ok {
				l.deliver(br, sub)
			}
		case <-l.stop:
			return
		}
	}
}

// pumpStatus pushes a health heartbeat at attach and after every
// ladder-relevant engine event.
func (l *Local) pumpStatus() {
	defer l.wg.Done()
	sub := l.eng.EventBus().Subscribe(64)
	defer sub.Close()
	l.post(replicaEvent{status: l.status()})
	for {
		select {
		case ev := <-sub.C:
			switch ev.Kind {
			case monitor.EventLadderDemoted, monitor.EventLadderPromoted,
				monitor.EventVariantDown, monitor.EventVariantDropped,
				monitor.EventVariantTimeout, monitor.EventVariantReplaced,
				monitor.EventSpareProvisioned:
				l.post(replicaEvent{status: l.status()})
			}
		case <-l.stop:
			return
		}
	}
}

// deliver translates one engine completion into a router event: results for
// primary batches, digest votes for cross-check batches.
func (l *Local) deliver(br monitor.BatchResult, sub localSub) {
	if !sub.verify {
		if br.Err != nil {
			// Refresh health ahead of the error so the router's failover
			// decision sees the demotion that caused it, not a stale ladder.
			l.post(replicaEvent{status: l.status()})
		}
		br.ID = sub.rid
		l.post(replicaEvent{res: &br})
		return
	}
	v := &wire.Digest{ID: sub.rid, Stage: -1, Vote: true}
	if br.Err == nil {
		v.Sum = check.DigestOf(br.Tensors)
	} // an erroring follower abstains: zero digest
	l.post(replicaEvent{vote: v, localVote: true})
}

func (l *Local) submit(rid uint64, _ []byte, inputs map[string]*tensor.Tensor, verify bool) (int, error) {
	// The engine ID is unknown until Submit returns, so a fast completion can
	// beat the mapping into l.subs: the pump parks such results in l.orphans
	// and the registration below picks them up. Holding l.mu across Submit
	// instead would deadlock — Submit blocks on engine capacity, which frees
	// only when the pump (also needing l.mu) drains Outputs.
	eid, err := l.eng.Submit(inputs)
	if err != nil {
		return 0, err
	}
	sub := localSub{rid: rid, verify: verify}
	l.mu.Lock()
	br, raced := l.orphans[eid]
	if raced {
		delete(l.orphans, eid)
	} else {
		l.subs[eid] = sub
	}
	l.mu.Unlock()
	if raced {
		l.deliver(br, sub)
	}
	return 0, nil
}

// announce is a no-op for in-process replicas: their votes carry the raw
// digest and the router compares against the leader's without a wire hop.
func (l *Local) announce([]byte, *wire.Digest) (int, error) { return 0, nil }
