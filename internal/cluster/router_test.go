package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// fakeReplica is a scriptable Replica: tests read what the router submitted
// and inject results, votes, heartbeats and failures.
type fakeReplica struct {
	id string

	mu        sync.Mutex
	idx       int
	events    chan<- replicaEvent
	subs      []fakeSub
	announces []wire.Digest
	window    int
}

type fakeSub struct {
	rid    uint64
	verify bool
	tag    wire.Type // first byte of enc, 0 when enc was nil
	inputs map[string]*tensor.Tensor
}

func newFake(id string) *fakeReplica { return &fakeReplica{id: id} }

func (f *fakeReplica) ID() string               { return f.id }
func (f *fakeReplica) Hello() wire.ReplicaHello { return wire.ReplicaHello{ID: f.id, Stages: 1} }
func (f *fakeReplica) InflightWindow() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.window
}
func (f *fakeReplica) SetInflightWindow(n int) {
	f.mu.Lock()
	f.window = n
	f.mu.Unlock()
}
func (f *fakeReplica) Close() error { return nil }

func (f *fakeReplica) attach(idx int, events chan<- replicaEvent, _ *telemetry.Tracer) {
	f.mu.Lock()
	f.idx, f.events = idx, events
	f.mu.Unlock()
}

func (f *fakeReplica) pollMetrics(uint64) {}

func (f *fakeReplica) submit(rid, _ uint64, enc []byte, inputs map[string]*tensor.Tensor, verify bool) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := fakeSub{rid: rid, verify: verify, inputs: inputs}
	if enc != nil {
		s.tag = wire.Type(enc[0])
	}
	f.subs = append(f.subs, s)
	return len(enc), nil
}

func (f *fakeReplica) announce(enc []byte, d *wire.Digest) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.announces = append(f.announces, *d)
	return len(enc), nil
}

func (f *fakeReplica) post(ev replicaEvent) {
	f.mu.Lock()
	ev.idx = f.idx
	ch := f.events
	f.mu.Unlock()
	ch <- ev
}

// lastSub waits for at least one submission (dispatch is asynchronous with
// Submit) and returns the most recent.
func (f *fakeReplica) lastSub(t *testing.T) fakeSub {
	t.Helper()
	waitUntil(t, "a submission", func() bool { return f.subCount() > 0 })
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.subs[len(f.subs)-1]
}

func (f *fakeReplica) subCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func testInputs(v float32) map[string]*tensor.Tensor {
	x := tensor.New(1, 4)
	for i := range x.Data() {
		x.Data()[i] = v
	}
	return map[string]*tensor.Tensor{"x": x}
}

func testOutputs(v float32) map[string]*tensor.Tensor {
	y := tensor.New(1, 4)
	for i := range y.Data() {
		y.Data()[i] = 2 * v
	}
	return map[string]*tensor.Tensor{"y": y}
}

// leaderAndFollower splits two fakes by who received the primary submission.
func leaderAndFollower(t *testing.T, a, b *fakeReplica) (lead, follow *fakeReplica) {
	t.Helper()
	waitUntil(t, "both submissions", func() bool { return a.subCount()+b.subCount() == 2 })
	if !a.lastSub(t).verify && a.lastSub(t).tag != wire.TVerify {
		return a, b
	}
	return b, a
}

func readRow(t *testing.T, r *Router) monitor.BatchResult {
	t.Helper()
	select {
	case row := <-r.Outputs():
		return row
	case <-time.After(5 * time.Second):
		t.Fatal("no result row")
	}
	return monitor.BatchResult{}
}

func TestRouterDeliversLeaderResult(t *testing.T) {
	f := newFake("a")
	r, err := NewRouter(RouterConfig{Replicas: []Replica{f}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	id, err := r.Submit(testInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	sub := f.lastSub(t)
	if sub.rid != id || sub.verify {
		t.Fatalf("leader submission = %+v, want primary rid %d", sub, id)
	}
	f.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: testOutputs(3)}})
	row := readRow(t, r)
	if row.ID != id || row.Err != nil || row.Tensors["y"].At(0, 0) != 6 {
		t.Fatalf("row = %+v, want id %d y=6", row, id)
	}
}

func TestRouterSyncDigestAgreeAndDissent(t *testing.T) {
	for _, dissent := range []bool{false, true} {
		name := "agree"
		if dissent {
			name = "dissent"
		}
		t.Run(name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			a, b := newFake("a"), newFake("b")
			r, err := NewRouter(RouterConfig{
				Replicas: []Replica{a, b}, Verify: 1, Sync: true, Metrics: reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			id, err := r.Submit(testInputs(5))
			if err != nil {
				t.Fatal(err)
			}
			lead, follow := leaderAndFollower(t, a, b)
			if fs := follow.lastSub(t); fs.tag != wire.TVerify || !fs.verify {
				t.Fatalf("follower got %+v, want retagged verify", fs)
			}
			outs := testOutputs(5)
			lead.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: outs}})
			// The leader result triggers the announce fan-out; the follower
			// answers with an authoritative verdict.
			waitUntil(t, "announce", func() bool {
				follow.mu.Lock()
				defer follow.mu.Unlock()
				return len(follow.announces) == 1
			})
			follow.mu.Lock()
			ann := follow.announces[0]
			follow.mu.Unlock()
			want := check.DigestOf(outs)
			if ann.ID != id || ann.Vote || check.Digest(ann.Sum) != want {
				t.Fatalf("announce = %+v, want leader digest of outputs", ann)
			}
			vote := &wire.Digest{ID: id, Stage: -1, Vote: true, Agree: !dissent, Sum: want}
			if dissent {
				vote.Sum[0] ^= 0xff
			}
			follow.post(replicaEvent{vote: vote})
			row := readRow(t, r)
			if dissent {
				if !errors.Is(row.Err, ErrDivergence) {
					t.Fatalf("row.Err = %v, want ErrDivergence", row.Err)
				}
				if n := reg.Counter(telemetry.MetricClusterDigestVotes,
					telemetry.L("verdict", telemetry.DigestVoteDissent)).Value(); n != 1 {
					t.Fatalf("dissent votes = %d, want 1", n)
				}
			} else {
				if row.Err != nil || row.ID != id {
					t.Fatalf("row = %+v, want clean id %d", row, id)
				}
				if n := reg.Counter(telemetry.MetricClusterDigestVotes,
					telemetry.L("verdict", telemetry.DigestVoteAgree)).Value(); n != 1 {
					t.Fatalf("agree votes = %d, want 1", n)
				}
			}
		})
	}
}

func TestRouterAbstainDoesNotFailBatch(t *testing.T) {
	reg := telemetry.NewRegistry()
	a, b := newFake("a"), newFake("b")
	r, err := NewRouter(RouterConfig{Replicas: []Replica{a, b}, Verify: 1, Sync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	id, _ := r.Submit(testInputs(7))
	lead, follow := leaderAndFollower(t, a, b)
	lead.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: testOutputs(7)}})
	// Zero-sum vote: the follower could not execute. Not dissent.
	follow.post(replicaEvent{vote: &wire.Digest{ID: id, Stage: -1, Vote: true}})
	row := readRow(t, r)
	if row.Err != nil {
		t.Fatalf("abstention failed the batch: %v", row.Err)
	}
	if n := reg.Counter(telemetry.MetricClusterDigestVotes,
		telemetry.L("verdict", telemetry.DigestVoteAbstain)).Value(); n != 1 {
		t.Fatalf("abstain votes = %d, want 1", n)
	}
}

func TestRouterLocalVoteParksUntilLeaderResult(t *testing.T) {
	a, b := newFake("a"), newFake("b")
	r, err := NewRouter(RouterConfig{Replicas: []Replica{a, b}, Verify: 1, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	id, _ := r.Submit(testInputs(9))
	lead, follow := leaderAndFollower(t, a, b)
	outs := testOutputs(9)
	// Local-style raw-digest vote lands before the leader's result: the
	// router must park it and compare once the reference digest exists.
	follow.post(replicaEvent{
		vote:      &wire.Digest{ID: id, Stage: -1, Vote: true, Sum: check.DigestOf(outs)},
		localVote: true,
	})
	lead.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: outs}})
	row := readRow(t, r)
	if row.Err != nil || row.ID != id {
		t.Fatalf("row = %+v, want clean id %d", row, id)
	}
}

func TestRouterFailoverPreservesBatchID(t *testing.T) {
	reg := telemetry.NewRegistry()
	a, b := newFake("a"), newFake("b")
	r, err := NewRouter(RouterConfig{Replicas: []Replica{a, b}, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	id, err := r.Submit(testInputs(2))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "leader submission", func() bool { return a.subCount()+b.subCount() == 1 })
	lead, peer := a, b
	if b.subCount() == 1 {
		lead, peer = b, a
	}
	lead.post(replicaEvent{down: errors.New("connection lost")})
	waitUntil(t, "failover resubmission", func() bool { return peer.subCount() == 1 })
	if sub := peer.lastSub(t); sub.rid != id || sub.verify {
		t.Fatalf("failover submission = %+v, want primary rid %d", sub, id)
	}
	peer.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: testOutputs(2)}})
	row := readRow(t, r)
	if row.ID != id || row.Err != nil {
		t.Fatalf("row = %+v, want clean id %d after failover", row, id)
	}
	// The dead leader's late result must not produce a duplicate row.
	lead.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: testOutputs(2)}})
	select {
	case dup := <-r.Outputs():
		t.Fatalf("duplicate row after failover: %+v", dup)
	case <-time.After(50 * time.Millisecond):
	}
	if n := reg.Counter(telemetry.MetricClusterFailovers).Value(); n != 1 {
		t.Fatalf("failovers = %d, want 1", n)
	}
}

func TestRouterHaltedResultFailsOver(t *testing.T) {
	a, b := newFake("a"), newFake("b")
	r, err := NewRouter(RouterConfig{Replicas: []Replica{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	id, _ := r.Submit(testInputs(4))
	waitUntil(t, "leader submission", func() bool { return a.subCount()+b.subCount() == 1 })
	lead, peer := a, b
	if b.subCount() == 1 {
		lead, peer = b, a
	}
	// Health refresh first (ordered stream), then the failed result — the
	// router must re-place instead of delivering the error.
	lead.post(replicaEvent{status: &wire.ReplicaStatus{Ladder: []int{int(monitor.LadderHalted)}}})
	lead.post(replicaEvent{res: &monitor.BatchResult{ID: id, Err: errors.New("stage halted")}})
	waitUntil(t, "failover resubmission", func() bool { return peer.subCount() == 1 })
	peer.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: testOutputs(4)}})
	row := readRow(t, r)
	if row.ID != id || row.Err != nil {
		t.Fatalf("row = %+v, want clean failover of halted leader", row)
	}
}

func TestRouterNoHealthyReplica(t *testing.T) {
	f := newFake("a")
	r, err := NewRouter(RouterConfig{Replicas: []Replica{f}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	f.post(replicaEvent{status: &wire.ReplicaStatus{Ladder: []int{int(monitor.LadderHalted)}}})
	waitUntil(t, "halted status", func() bool {
		l := r.Ladder()
		return len(l) == 1 && l[0] == monitor.LadderHalted
	})
	if _, err := r.Submit(testInputs(1)); !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("Submit = %v, want ErrNoHealthyReplica", err)
	}
}

func TestRouterVoteTimeoutAbstains(t *testing.T) {
	a, b := newFake("a"), newFake("b")
	r, err := NewRouter(RouterConfig{
		Replicas: []Replica{a, b}, Verify: 1, Sync: true, VoteTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	id, _ := r.Submit(testInputs(6))
	lead, _ := leaderAndFollower(t, a, b)
	lead.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: testOutputs(6)}})
	// The follower never votes; the sweeper must resolve it as abstention.
	row := readRow(t, r)
	if row.Err != nil || row.ID != id {
		t.Fatalf("row = %+v, want timeout abstention delivery", row)
	}
}

func TestRouterTensorModeComparesFollowerResult(t *testing.T) {
	reg := telemetry.NewRegistry()
	a, b := newFake("a"), newFake("b")
	r, err := NewRouter(RouterConfig{
		Replicas: []Replica{a, b}, Verify: 1, Sync: true, Mode: TensorForward, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	id, _ := r.Submit(testInputs(8))
	waitUntil(t, "both submissions", func() bool { return a.subCount()+b.subCount() == 2 })
	if a.lastSub(t).tag != wire.TBatch || b.lastSub(t).tag != wire.TBatch {
		t.Fatalf("tensor mode must ship TBatch to both roles, got %v/%v",
			a.lastSub(t).tag, b.lastSub(t).tag)
	}
	// Both roles received TBatch and return full results. The router resolves
	// leader vs follower by replica index, so posting identical outputs from
	// both works in either placement: the leader's stands as the row, the
	// follower's is digested router-side into an agree vote.
	outs := testOutputs(8)
	a.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: outs}})
	b.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: outs}})
	row := readRow(t, r)
	if row.Err != nil || row.ID != id {
		t.Fatalf("row = %+v, want clean tensor-mode agreement", row)
	}
	agree := reg.Counter(telemetry.MetricClusterDigestVotes,
		telemetry.L("verdict", telemetry.DigestVoteAgree)).Value()
	if agree != 1 {
		t.Fatalf("agree votes = %d, want 1", agree)
	}
	// The follower's full result crossed the (fake) wire: result-plane bytes
	// in tensor mode are what DigestForward eliminates.
}

func TestRouterFansInflightWindow(t *testing.T) {
	a, b := newFake("a"), newFake("b")
	r, err := NewRouter(RouterConfig{Replicas: []Replica{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetInflightWindow(13)
	if a.InflightWindow() != 13 || b.InflightWindow() != 13 {
		t.Fatalf("windows = %d,%d, want 13,13", a.InflightWindow(), b.InflightWindow())
	}
	if r.InflightWindow() != 13 {
		t.Fatalf("router window = %d, want 13", r.InflightWindow())
	}
}

func TestRendezvousOrderDeterministicPermutation(t *testing.T) {
	ids := []string{"alpha", "beta", "gamma", "delta"}
	o1 := rendezvousOrder("model-a", ids)
	o2 := rendezvousOrder("model-a", ids)
	if len(o1) != len(ids) {
		t.Fatalf("order length %d, want %d", len(o1), len(ids))
	}
	seen := make(map[int]bool)
	for i, v := range o1 {
		if o2[i] != v {
			t.Fatalf("order not deterministic: %v vs %v", o1, o2)
		}
		if v < 0 || v >= len(ids) || seen[v] {
			t.Fatalf("order %v is not a permutation", o1)
		}
		seen[v] = true
	}
	// Different keys should (for these inputs) shuffle the preference —
	// guards against hashing that ignores the key.
	if o3 := rendezvousOrder("model-b", ids); equalInts(o1, o3) {
		t.Logf("warning: distinct keys produced identical order %v", o1)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
