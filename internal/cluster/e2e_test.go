package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// e2eVariant is a wire-speaking variant over an AEAD-sealed in-memory
// channel that doubles its "x" input. When die is non-nil, the variant
// closes its connection upon the first batch whose trigger fires — the
// deterministic mid-stream crash the failover test keys on.
type e2eVariant struct {
	id  string
	die func(in map[string]*tensor.Tensor) bool
}

func (v *e2eVariant) start(t testing.TB) *monitor.Handle {
	t.Helper()
	monC, varC := net.Pipe()
	ready := make(chan *securechan.SecureConn, 1)
	go func() {
		vc, err := securechan.Server(varC, nil, nil)
		if err != nil {
			return
		}
		ready <- vc
		for {
			msg, err := wire.Recv(vc)
			if err != nil {
				return
			}
			switch m := msg.(type) {
			case *wire.Batch:
				if v.die != nil && v.die(m.Tensors) {
					_ = vc.Close()
					return
				}
				y := m.Tensors["x"].Clone()
				y.Scale(2)
				res := &wire.Result{ID: m.ID, Trace: m.Trace, VariantID: v.id,
					Tensors: map[string]*tensor.Tensor{"y": y}}
				if err := wire.Send(vc, res); err != nil {
					return
				}
			case *wire.Shutdown:
				_ = vc.Close()
				return
			}
		}
	}()
	mc, err := securechan.Client(monC, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-ready
	return monitor.NewHandle(v.id, 0, "spec", mc)
}

// newClusterEngine stands up a 3-variant single-stage MVX engine whose
// variants all crash when die fires (nil die = never).
func newClusterEngine(t testing.TB, die func(in map[string]*tensor.Tensor) bool) *monitor.Engine {
	t.Helper()
	handles := make([]*monitor.Handle, 3)
	for i := range handles {
		handles[i] = (&e2eVariant{id: fmt.Sprintf("v%d", i), die: die}).start(t)
	}
	eng, err := monitor.NewEngine(monitor.EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"y"},
		Stages: []monitor.StageSpec{{
			Inputs:  []string{"x"},
			Outputs: []string{"y"},
			Handles: handles,
		}},
		Metrics: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	t.Cleanup(eng.Stop)
	return eng
}

// startRemoteReplica serves eng over an in-memory securechan pair and
// returns the router-side handle, exercising the full wire protocol.
func startRemoteReplica(t testing.TB, id string, eng *monitor.Engine) *Remote {
	t.Helper()
	routerC, replicaC := net.Pipe()
	go func() {
		conn, err := securechan.Server(replicaC, nil, nil)
		if err != nil {
			return
		}
		_ = ServeReplica(conn, eng, ReplicaServerOptions{
			Hello: wire.ReplicaHello{
				ID:           id,
				Variants:     3,
				GraphInputs:  []string{"x"},
				GraphOutputs: []string{"y"},
			},
		})
	}()
	cc, err := securechan.Client(routerC, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rem, err := NewRemote(cc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rem.Close() })
	return rem
}

// TestClusterReplicaFailoverE2E is the cluster analogue of the serving
// tier's TestDemuxAfterHotReplacement: many concurrent single-item requests
// stream through serve onto a 2-replica router while one remote replica's
// entire variant set crashes mid-stream, demoting its engine to halted. The
// in-flight batches on the dying replica must complete via the peer under
// their original IDs — every response carries exactly its own request's
// rows, none duplicated, none dropped.
func TestClusterReplicaFailoverE2E(t *testing.T) {
	const poison = float32(1313)
	engA := newClusterEngine(t, nil)
	engB := newClusterEngine(t, func(in map[string]*tensor.Tensor) bool {
		for _, v := range in["x"].Data() {
			if v == poison {
				return true
			}
		}
		return false
	})
	repA := startRemoteReplica(t, "replica-a", engA)
	repB := startRemoteReplica(t, "replica-b", engB)

	reg := telemetry.NewRegistry()
	router, err := NewRouter(RouterConfig{
		Replicas:    []Replica{repA, repB},
		Verify:      1,
		Sync:        true,
		VoteTimeout: 500 * time.Millisecond,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = router.Close() })

	srv := serve.New(router, serve.Config{
		MaxBatch:    2,
		MaxDelay:    time.Millisecond,
		TenantQueue: 64,
		GlobalQueue: 256,
		Metrics:     reg,
	})
	t.Cleanup(srv.Close)

	const clients = 6
	const perClient = 20
	var poisoned atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				v := float32(1 + c*1000 + i)
				if c == 2 && i == 8 {
					v = poison // kills every variant of replica B mid-stream
					poisoned.Store(true)
				}
				x := tensor.New(1, 256)
				for j := range x.Data() {
					x.Data()[j] = v
				}
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				r, err := srv.Infer(ctx, serve.Request{
					Tenant: fmt.Sprintf("t%d", c%3),
					Inputs: map[string]*tensor.Tensor{"x": x},
				})
				cancel()
				if err != nil {
					errs <- fmt.Errorf("client %d req %d (v=%v): %w", c, i, v, err)
					return
				}
				if got := r.Tensors["y"].At(0, 0); got != 2*v {
					errs <- fmt.Errorf("client %d req %d: y=%v want %v (demux mixed rows)", c, i, got, 2*v)
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !poisoned.Load() {
		t.Fatal("poison request never issued")
	}

	// The poisoned batch reached replica B (as leader or follower) and
	// killed its variant set; its engine must have reported halted.
	waitUntil(t, "replica B halted rung", func() bool {
		return reg.Gauge(telemetry.MetricClusterReplicaRung,
			telemetry.L("replica", "replica-b")).Value() == int64(monitor.LadderHalted)
	})
	// The cluster as a whole still serves at full capability via A.
	ladder := router.Ladder()
	if len(ladder) != 1 || ladder[0] != monitor.LadderFull {
		t.Fatalf("cluster ladder = %v, want [full] via surviving replica", ladder)
	}
	// Digest votes flowed while both replicas were healthy.
	agree := reg.Counter(telemetry.MetricClusterDigestVotes,
		telemetry.L("verdict", telemetry.DigestVoteAgree)).Value()
	if agree == 0 {
		t.Fatal("no agreeing digest votes recorded — cross-check plane never exercised")
	}
	// And the verification plane stayed digest-sized: its cumulative bytes
	// must be a small fraction of the result plane's.
	digestBytes := reg.Counter(telemetry.MetricClusterFwdBytes,
		telemetry.L("plane", telemetry.ForwardPlaneDigest)).Value()
	resultBytes := reg.Counter(telemetry.MetricClusterFwdBytes,
		telemetry.L("plane", telemetry.ForwardPlaneResult)).Value()
	if digestBytes == 0 || resultBytes == 0 {
		t.Fatalf("byte accounting missing: digest=%d result=%d", digestBytes, resultBytes)
	}
	if digestBytes*4 > resultBytes {
		t.Fatalf("digest plane %dB vs result plane %dB — selective forwarding not engaged", digestBytes, resultBytes)
	}
	t.Logf("failovers=%d agree_votes=%d digest_bytes=%d result_bytes=%d",
		reg.Counter(telemetry.MetricClusterFailovers).Value(), agree, digestBytes, resultBytes)
}

// TestClusterMixedLocalRemote routes over one in-process replica and one
// remote replica with synchronous digest verification: both vote paths (raw
// local digests compared router-side, authoritative remote verdicts) must
// agree on every batch.
func TestClusterMixedLocalRemote(t *testing.T) {
	engA := newClusterEngine(t, nil)
	engB := newClusterEngine(t, nil)
	local := NewLocal("local-a", engA, LocalOptions{
		Hello: wire.ReplicaHello{GraphInputs: []string{"x"}, GraphOutputs: []string{"y"}},
	})
	remote := startRemoteReplica(t, "remote-b", engB)

	reg := telemetry.NewRegistry()
	router, err := NewRouter(RouterConfig{
		Replicas: []Replica{local, remote},
		Verify:   1,
		Sync:     true,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = router.Close() })

	const batches = 24
	ids := make(map[uint64]float32, batches)
	for i := 0; i < batches; i++ {
		v := float32(i + 1)
		x := tensor.New(1, 8)
		for j := range x.Data() {
			x.Data()[j] = v
		}
		id, err := router.Submit(map[string]*tensor.Tensor{"x": x})
		if err != nil {
			t.Fatal(err)
		}
		ids[id] = v
	}
	for i := 0; i < batches; i++ {
		row := readRow(t, router)
		v, ok := ids[row.ID]
		if !ok {
			t.Fatalf("unknown or duplicate row ID %d", row.ID)
		}
		delete(ids, row.ID)
		if row.Err != nil {
			t.Fatalf("batch %d failed: %v", row.ID, row.Err)
		}
		if got := row.Tensors["y"].At(0, 0); got != 2*v {
			t.Fatalf("batch %d: y=%v want %v", row.ID, got, 2*v)
		}
	}
	agree := reg.Counter(telemetry.MetricClusterDigestVotes,
		telemetry.L("verdict", telemetry.DigestVoteAgree)).Value()
	if agree != batches {
		t.Fatalf("agree votes = %d, want %d (every batch cross-checked)", agree, batches)
	}
}
