package cluster

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/transcript"
	"repro/internal/wire"
)

// TestClusterAuditEndToEnd drives a 2-replica router with a live transcript
// recorder signed by the routing tier's identity enclave, then audits the
// result the way an external operator would: fetch documents over HTTP from
// the /audit handler and verify them offline with an Auditor built from
// nothing but the trust anchors (platform identity, router measurement,
// model digest). Covers the clean path (head, inclusion by trace,
// consistency from a pinned head), the vote record (agree and abstain both
// land in leaves), the abort path (a diverged batch leaves no leaf), and
// forged-head rejection.
func TestClusterAuditEndToEnd(t *testing.T) {
	plat, err := enclave.NewPlatform("cluster-audit-plat", enclave.SGX2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.Launch(core.RouterImage())
	if err != nil {
		t.Fatal(err)
	}
	trusted := enclave.NewVerifier()
	trusted.Trust(plat)

	var model transcript.Hash
	model[0] = 0x5a
	rec := transcript.NewRecorder(transcript.Config{
		Signer:      encl,
		Model:       model,
		HeadEvery:   1,
		SampleEvery: -1,
		Metrics:     telemetry.NewRegistry(),
	})
	defer rec.Close()

	a, b := newFake("a"), newFake("b")
	r, err := NewRouter(RouterConfig{
		Replicas: []Replica{a, b}, Verify: 1, Sync: true,
		Metrics: telemetry.NewRegistry(), Transcript: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// runBatch submits one batch, has the leader report a stage-0 digest and
	// its result, and the follower vote per verdict. Returns the batch ID,
	// the delivered outputs and the follower's replica ID.
	runBatch := func(val float32, verdict string) (uint64, map[string]*tensor.Tensor, string) {
		t.Helper()
		before := a.subCount() + b.subCount()
		id, err := r.Submit(testInputs(val))
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "both submissions", func() bool { return a.subCount()+b.subCount() == before+2 })
		lead, follow := a, b
		if a.lastSub(t).verify {
			lead, follow = b, a
		}
		outs := testOutputs(val)
		want := check.DigestOf(outs)
		annBefore := len(follow.announces)
		// Best-effort checkpoint plane first, then the result (same event
		// channel, so the router processes them in order).
		lead.post(replicaEvent{vote: &wire.Digest{ID: id, Stage: 0, Sum: want}})
		lead.post(replicaEvent{res: &monitor.BatchResult{ID: id, Tensors: outs}})
		waitUntil(t, "announce", func() bool {
			follow.mu.Lock()
			defer follow.mu.Unlock()
			return len(follow.announces) > annBefore
		})
		vote := &wire.Digest{ID: id, Stage: -1, Vote: true, Agree: true, Sum: want}
		switch verdict {
		case "abstain":
			vote.Sum = [32]byte{} // could not execute: zero sum, not dissent
			vote.Agree = false
		case "dissent":
			vote.Sum[0] ^= 0xff
			vote.Agree = false
		}
		follow.post(replicaEvent{vote: vote})
		return id, outs, follow.id
	}

	// Batch 1: unanimous. Delivers and appends leaf 0.
	id1, outs1, follower1 := runBatch(3, "agree")
	if row := readRow(t, r); row.Err != nil || row.ID != id1 {
		t.Fatalf("agree row = %+v, want clean id %d", row, id1)
	}
	waitUntil(t, "leaf 1", func() bool { return rec.Size() == 1 })
	pinned, err := rec.SignedHead(false)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Head.Size != 1 {
		t.Fatalf("pinned head size = %d, want 1", pinned.Head.Size)
	}

	// Batch 2: follower abstains. Still delivers; the abstention is recorded
	// in leaf 1 as a non-agreeing zero-sum vote.
	id2, _, follower2 := runBatch(4, "abstain")
	if row := readRow(t, r); row.Err != nil || row.ID != id2 {
		t.Fatalf("abstain row = %+v, want clean id %d", row, id2)
	}
	waitUntil(t, "leaf 2", func() bool { return rec.Size() == 2 })

	// Batch 3: follower dissents. The batch fails with ErrDivergence and is
	// aborted — diverged outputs never enter the audit log, the batch-ID gap
	// is the auditable trace.
	id3, _, _ := runBatch(5, "dissent")
	row := readRow(t, r)
	if row.Err == nil || row.ID != id3 {
		t.Fatalf("dissent row = %+v, want ErrDivergence id %d", row, id3)
	}
	if got := rec.Size(); got != 2 {
		t.Fatalf("log size after aborted batch = %d, want 2", got)
	}

	// The operator's side: HTTP audit endpoint + offline verification.
	srv := httptest.NewServer(transcript.Handler(rec, transcript.HandlerConfig{}))
	defer srv.Close()
	aud := &transcript.Auditor{
		Verifier:     trusted,
		Measurements: []enclave.Measurement{enclave.Measure(core.RouterImage())},
		Model:        model,
	}

	// Head document: signed by the router identity over both delivered leaves.
	headDoc, err := transcript.Fetch(srv.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aud.VerifyDoc(headDoc); err != nil {
		t.Fatalf("honest head rejected: %v", err)
	}
	if headDoc.Head.Head.Size != 2 || headDoc.Size != 2 {
		t.Fatalf("head covers %d of %d leaves, want 2 of 2", headDoc.Head.Head.Size, headDoc.Size)
	}

	// Inclusion by trace: leaf 0 carries the unanimous batch end to end.
	l0, _, err := rec.LeafAt(0)
	if err != nil {
		t.Fatal(err)
	}
	traceDoc, err := transcript.Fetch(srv.URL, fmt.Sprintf("trace=%016x", l0.Trace))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := aud.VerifyDoc(traceDoc)
	if err != nil {
		t.Fatalf("inclusion by trace rejected: %v", err)
	}
	if leaf == nil || leaf.Batch != id1 {
		t.Fatalf("leaf = %+v, want batch %d", leaf, id1)
	}
	if check.Digest(leaf.Input) != check.DigestOf(testInputs(3)) {
		t.Fatal("leaf input digest does not bind the submitted tensors")
	}
	if check.Digest(leaf.Output) != check.DigestOf(outs1) {
		t.Fatal("leaf output digest does not bind the delivered tensors")
	}
	if len(leaf.Checkpoints) != 1 || check.Digest(leaf.Checkpoints[0]) != check.DigestOf(outs1) {
		t.Fatalf("leaf checkpoints = %v, want the leader's stage-0 digest", leaf.Checkpoints)
	}
	if len(leaf.Votes) != 1 || leaf.Votes[0].Replica != follower1 || !leaf.Votes[0].Agree {
		t.Fatalf("leaf votes = %+v, want one agree from %q", leaf.Votes, follower1)
	}

	// Leaf 1 records the abstention as a non-agreeing zero-sum vote.
	l1, _, err := rec.LeafAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Votes) != 1 || l1.Votes[0].Replica != follower2 || l1.Votes[0].Agree {
		t.Fatalf("abstain leaf votes = %+v, want one non-agree from %q", l1.Votes, follower2)
	}
	if l1.Votes[0].Sum != (check.Digest{}) {
		t.Fatal("abstention should carry a zero sum")
	}

	// Consistency: the head pinned after batch 1 must extend into the
	// current log, proving nothing was rewritten underneath it.
	consDoc, err := transcript.Fetch(srv.URL, fmt.Sprintf("consistency=%d", pinned.Head.Size))
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.VerifyConsistencyWith(pinned.Head, consDoc); err != nil {
		t.Fatalf("pinned head does not extend: %v", err)
	}

	// Forged head: flipping the model binding breaks the report.
	forged := *headDoc
	forged.Head.Head.Model = transcript.Hash{0x99}
	if _, err := aud.VerifyDoc(&forged); err == nil {
		t.Fatal("model-forged head verified")
	}
	// An auditor with no trust anchors rejects even the honest document.
	stranger := &transcript.Auditor{Verifier: enclave.NewVerifier(), Model: model}
	if _, err := stranger.VerifyDoc(headDoc); err == nil {
		t.Fatal("untrusting auditor accepted the head")
	}
}
