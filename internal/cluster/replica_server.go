package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// ReplicaServerOptions configures the replica side of the router protocol.
type ReplicaServerOptions struct {
	// Hello advertises the model interface; ID must be set. Stages, Variants
	// (if zero) and InflightWindow are filled from the engine.
	Hello wire.ReplicaHello
	// Spares reports the local spare pool size for status heartbeats; nil
	// reports zero.
	Spares func() int
	// HoldTTL bounds how long a cross-check digest (or an early announce)
	// waits for its counterpart before the batch is abandoned replica-side.
	// Zero means 30 seconds.
	HoldTTL time.Duration
	// Metrics is the registry served to the router's metrics-federation
	// polls; nil uses telemetry.Default (the daemon's process registry).
	Metrics *telemetry.Registry
	// MaxSpans bounds the spans harvested and shipped per batch in a
	// SpanReport. Zero means 64.
	MaxSpans int
}

// spanScanWindow bounds how far back in the engine's span ring a per-batch
// harvest scans. A just-delivered batch's spans sit at the young end of the
// ring, within (in-flight depth x spans per batch) entries; 1024 covers that
// comfortably while keeping the per-batch cost independent of -trace-ring.
const spanScanWindow = 1024

// ReplicaServer runs one replica's end of the router protocol over a
// securechan connection: it registers with a hello, executes Batch frames as
// the batch leader (full result back) and Verify frames as a follower
// (digest vote back), streams health on ladder transitions, and applies
// router-scoped controller knobs. The engine is owned by the caller and must
// be dedicated to this server while it runs.
type ReplicaServer struct {
	conn securechan.Conn
	eng  *monitor.Engine
	opts ReplicaServerOptions

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// stageDigests decouples the engine's DigestSink (stage worker context,
	// must not block) from the connection; full buffer drops the frame —
	// stage digests are a best-effort early-dissent signal, the final vote is
	// the correctness backbone.
	stageDigests chan wire.Digest

	mu        sync.Mutex
	pend      map[uint64]repSub              // engine batch ID -> router batch
	orphans   map[uint64]monitor.BatchResult // completed before Submit registered
	held      map[uint64]heldDigest          // follower digest awaiting announce (router ID key)
	announces map[uint64]heldDigest          // announce awaiting follower digest (router ID key)
}

type repSub struct {
	rid    uint64
	trace  uint64 // router-minted federation trace ID (zero: tracing off)
	verify bool
}

type heldDigest struct {
	sum  check.Digest
	err  bool // execution failed: vote must abstain
	born time.Time
}

// NewReplicaServer builds the server; Run drives it. Split from ServeReplica
// so the daemon can wire the engine's DigestSink to StageDigestSink before
// starting the protocol.
func NewReplicaServer(conn securechan.Conn, eng *monitor.Engine, opts ReplicaServerOptions) *ReplicaServer {
	if opts.HoldTTL <= 0 {
		opts.HoldTTL = 30 * time.Second
	}
	if opts.Spares == nil {
		opts.Spares = func() int { return 0 }
	}
	if opts.Metrics == nil {
		opts.Metrics = telemetry.Default
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = 64
	}
	return &ReplicaServer{
		conn:         conn,
		eng:          eng,
		opts:         opts,
		stop:         make(chan struct{}),
		stageDigests: make(chan wire.Digest, 256),
		pend:         make(map[uint64]repSub),
		orphans:      make(map[uint64]monitor.BatchResult),
		held:         make(map[uint64]heldDigest),
		announces:    make(map[uint64]heldDigest),
	}
}

// ServeReplica serves the engine to a cluster router on conn until the
// connection fails or the router sends Shutdown.
func ServeReplica(conn securechan.Conn, eng *monitor.Engine, opts ReplicaServerOptions) error {
	return NewReplicaServer(conn, eng, opts).Run()
}

// Run sends the hello and drives the protocol until the connection fails or
// the router sends Shutdown. The engine keeps running after Run returns.
func (s *ReplicaServer) Run() error {
	hello := s.opts.Hello
	ladder := s.eng.Ladder()
	hello.Stages = len(ladder)
	hello.InflightWindow = s.eng.InflightWindow()
	if err := wire.Send(s.conn, &hello); err != nil {
		return fmt.Errorf("cluster: replica hello: %w", err)
	}
	s.wg.Add(3)
	go s.pumpOutputs()
	go s.pumpStatus()
	go s.sweep()
	err := s.readLoop()
	s.shutdown()
	s.wg.Wait()
	return err
}

func (s *ReplicaServer) shutdown() { s.stopOnce.Do(func() { close(s.stop) }) }

// send transmits one frame; securechan serializes concurrent senders. A send
// failure stops the server (the read loop will fail on the dead connection).
func (s *ReplicaServer) send(m wire.Msg) {
	if err := wire.Send(s.conn, m); err != nil {
		s.shutdown()
	}
}

func (s *ReplicaServer) readLoop() error {
	for {
		m, err := wire.Recv(s.conn)
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return err
			}
		}
		switch v := m.(type) {
		case *wire.Batch:
			s.submit(v.ID, v.Trace, v.Tensors, false)
		case *wire.Verify:
			s.submit(v.ID, v.Trace, v.Tensors, true)
		case *wire.Digest:
			if !v.Vote && v.Stage < 0 {
				s.onAnnounce(v)
			} // stage-digest frames are router-bound only; ignore otherwise
		case *wire.ReplicaTune:
			s.eng.SetInflightWindow(v.InflightWindow)
		case *wire.MetricsPoll:
			// Metrics federation: answer with the registry snapshot on the
			// same channel — replicas expose no HTTP surface to the router.
			s.send(&wire.MetricsReport{Seq: v.Seq, Series: s.opts.Metrics.Snapshot()})
		case *wire.Shutdown:
			s.shutdown()
			return nil
		}
	}
}

// submit feeds one router batch into the engine, registering the ID
// translation. Orphan parking resolves the race against fast completions
// (see Local.submit).
func (s *ReplicaServer) submit(rid, trace uint64, tensors map[string]*tensor.Tensor, verify bool) {
	eid, err := s.eng.SubmitTraced(tensors, trace)
	if err != nil {
		if verify {
			// Abstain: the follower cannot execute, so it has no verdict.
			s.send(&wire.Digest{ID: rid, Stage: -1, Vote: true})
			return
		}
		s.send(&wire.Result{ID: rid, Err: err.Error()})
		return
	}
	sub := repSub{rid: rid, trace: trace, verify: verify}
	s.mu.Lock()
	br, raced := s.orphans[eid]
	if raced {
		delete(s.orphans, eid)
	} else {
		s.pend[eid] = sub
	}
	s.mu.Unlock()
	if raced {
		s.deliver(br, sub)
	}
}

func (s *ReplicaServer) pumpOutputs() {
	defer s.wg.Done()
	for {
		select {
		case br, ok := <-s.eng.Outputs():
			if !ok {
				s.shutdown()
				return
			}
			s.mu.Lock()
			sub, ok := s.pend[br.ID]
			if ok {
				delete(s.pend, br.ID)
			} else {
				s.orphans[br.ID] = br
			}
			s.mu.Unlock()
			if ok {
				s.deliver(br, sub)
			}
		case d := <-s.stageDigests:
			s.send(&d)
		case <-s.stop:
			return
		}
	}
}

// deliver answers one completed batch: leader batches return the full result,
// follower batches resolve into a digest vote — immediately when the
// leader's announce already arrived, otherwise the digest is held for it.
func (s *ReplicaServer) deliver(br monitor.BatchResult, sub repSub) {
	if !sub.verify {
		res := &wire.Result{ID: sub.rid, Tensors: br.Tensors}
		if br.Err != nil {
			res.Err = br.Err.Error()
			res.Tensors = nil
			// Refresh health ahead of the error on the same ordered stream,
			// so the router's failover decision sees the demotion that
			// caused it rather than a stale ladder.
			s.send(s.status())
		}
		s.send(res)
		s.reportSpans(sub)
		return
	}
	h := heldDigest{err: br.Err != nil, born: time.Now()}
	if br.Err == nil {
		h.sum = check.DigestOf(br.Tensors)
	}
	s.mu.Lock()
	a, ok := s.announces[sub.rid]
	if ok {
		delete(s.announces, sub.rid)
	} else {
		s.held[sub.rid] = h
	}
	s.mu.Unlock()
	if ok {
		s.vote(sub.rid, h, a.sum)
	}
	// Follower spans ship at engine completion; the vote may still be held
	// for the leader's announce, but the spans exist now.
	s.reportSpans(sub)
}

// reportSpans harvests this batch's spans from the engine's ring and ships
// them to the router right behind the result/vote on the same ordered
// connection — the sending half of trace federation. The engine records its
// root "batch" span before the result reaches the output channel, so the
// harvest here sees the complete set. Zero-trace batches (tracing off) skip
// everything.
func (s *ReplicaServer) reportSpans(sub repSub) {
	if sub.trace == 0 || !telemetry.Enabled() {
		return
	}
	spans := s.eng.Tracer().SpansForRecent(sub.trace, spanScanWindow, s.opts.MaxSpans)
	if len(spans) == 0 {
		return
	}
	s.send(&wire.SpanReport{ID: sub.rid, Replica: s.opts.Hello.ID, Spans: spans})
}

// onAnnounce resolves the leader's final digest against the held follower
// digest, or parks it until the local execution completes.
func (s *ReplicaServer) onAnnounce(d *wire.Digest) {
	s.mu.Lock()
	h, ok := s.held[d.ID]
	if ok {
		delete(s.held, d.ID)
	} else {
		s.announces[d.ID] = heldDigest{sum: check.Digest(d.Sum), born: time.Now()}
	}
	s.mu.Unlock()
	if ok {
		s.vote(d.ID, h, check.Digest(d.Sum))
	}
}

// vote sends the follower verdict: zero Sum abstains (execution failed),
// otherwise Agree reports digest equality and Sum carries what this replica
// actually computed so a dissent is diagnosable router-side.
func (s *ReplicaServer) vote(rid uint64, h heldDigest, leader check.Digest) {
	v := &wire.Digest{ID: rid, Stage: -1, Vote: true}
	if !h.err {
		v.Sum = h.sum
		v.Agree = h.sum == leader
	}
	s.send(v)
}

// StageDigestSink adapts the engine's per-checkpoint digest tap
// (monitor.EngineConfig.DigestSink) to the router's verification plane.
// Never blocks: frames drop when the channel is saturated.
func (s *ReplicaServer) StageDigestSink(batchID uint64, stage int, digest check.Digest) {
	s.mu.Lock()
	sub, ok := s.pend[batchID]
	s.mu.Unlock()
	if !ok {
		return // not a router batch (or already completed)
	}
	d := wire.Digest{ID: sub.rid, Stage: int32(stage), Sum: digest}
	select {
	case s.stageDigests <- d:
	default:
	}
}

func (s *ReplicaServer) status() *wire.ReplicaStatus {
	ladder := s.eng.Ladder()
	st := &wire.ReplicaStatus{Ladder: make([]int, len(ladder)), Spares: s.opts.Spares()}
	for i, r := range ladder {
		st.Ladder[i] = int(r)
	}
	return st
}

func (s *ReplicaServer) pumpStatus() {
	defer s.wg.Done()
	sub := s.eng.EventBus().Subscribe(64)
	defer sub.Close()
	s.send(s.status())
	for {
		select {
		case ev := <-sub.C:
			switch ev.Kind {
			case monitor.EventLadderDemoted, monitor.EventLadderPromoted,
				monitor.EventVariantDown, monitor.EventVariantDropped,
				monitor.EventVariantTimeout, monitor.EventVariantReplaced,
				monitor.EventSpareProvisioned:
				s.send(s.status())
			}
		case <-s.stop:
			return
		}
	}
}

// sweep abandons held digests and announces whose counterpart never arrived
// (router failed the batch over, or the announce was lost with its leader).
func (s *ReplicaServer) sweep() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.HoldTTL / 2)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			s.mu.Lock()
			for id, h := range s.held {
				if now.Sub(h.born) > s.opts.HoldTTL {
					delete(s.held, id)
				}
			}
			for id, a := range s.announces {
				if now.Sub(a.born) > s.opts.HoldTTL {
					delete(s.announces, id)
				}
			}
			s.mu.Unlock()
		case <-s.stop:
			return
		}
	}
}
