package cluster

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Remote is the router's handle to a replica engine in another process (or on
// another node), reached over a securechan connection whose far end runs
// ServeReplica. The connection carries both planes: input dispatch
// (Batch/Verify frames, encode-once fan-out) and verification (46-byte Digest
// frames), plus the replica's health heartbeats and scoped controller knobs.
type Remote struct {
	conn  securechan.Conn
	hello wire.ReplicaHello

	idx    int
	events chan<- replicaEvent
	stop   chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	window int
}

// NewRemote completes replica registration on an established connection: it
// reads the replica's hello (sent by ServeReplica on accept) and returns the
// handle. The caller keeps ownership of the connection's lifecycle via Close.
func NewRemote(conn securechan.Conn) (*Remote, error) {
	m, err := wire.Recv(conn)
	if err != nil {
		return nil, fmt.Errorf("cluster: replica hello: %w", err)
	}
	h, ok := m.(*wire.ReplicaHello)
	if !ok {
		return nil, fmt.Errorf("cluster: expected replica hello, got %T", m)
	}
	if h.ID == "" {
		return nil, errors.New("cluster: replica hello missing ID")
	}
	return &Remote{
		conn:   conn,
		hello:  *h,
		window: h.InflightWindow,
		stop:   make(chan struct{}),
	}, nil
}

func (r *Remote) ID() string               { return r.hello.ID }
func (r *Remote) Hello() wire.ReplicaHello { return r.hello }

// InflightWindow reports the router's last known window for the replica; the
// authoritative value lives in the remote engine.
func (r *Remote) InflightWindow() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.window
}

// SetInflightWindow retunes the remote engine's credit window over the wire.
// Delivery is best-effort: a send failure also fails the reader, which
// reports the replica down.
func (r *Remote) SetInflightWindow(n int) {
	r.mu.Lock()
	r.window = n
	r.mu.Unlock()
	_ = wire.Send(r.conn, &wire.ReplicaTune{InflightWindow: n})
}

// Close tears down the connection; the reader reports the replica down to the
// router, which fails its in-flight batches over to peers.
func (r *Remote) Close() error {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	err := r.conn.Close()
	r.wg.Wait()
	return err
}

func (r *Remote) attach(idx int, events chan<- replicaEvent, _ *telemetry.Tracer) {
	// The router tracer is irrelevant here: a remote engine's ring is in
	// another process, so its spans always arrive as SpanReport frames.
	r.idx, r.events = idx, events
	r.wg.Add(1)
	go r.reader()
}

func (r *Remote) post(ev replicaEvent) {
	ev.idx = r.idx
	select {
	case r.events <- ev:
	case <-r.stop:
	}
}

// reader demultiplexes the replica's upstream frames into router events.
// wireBytes carries the decoded payload size so the router's forward-bytes
// accounting reflects what actually crossed the connection.
func (r *Remote) reader() {
	defer r.wg.Done()
	for {
		m, err := wire.Recv(r.conn)
		if err != nil {
			select {
			case <-r.stop: // deliberate Close: not a failure
			default:
				r.post(replicaEvent{down: err})
			}
			return
		}
		switch v := m.(type) {
		case *wire.Result:
			br := monitor.BatchResult{ID: v.ID, Tensors: v.Tensors}
			if v.Err != "" {
				br.Err = errors.New(v.Err)
			}
			r.post(replicaEvent{res: &br, wireBytes: resultWireBytes(v)})
		case *wire.Digest:
			r.post(replicaEvent{vote: v, wireBytes: wire.DigestFrameLen})
		case *wire.ReplicaStatus:
			r.post(replicaEvent{status: v})
		case *wire.SpanReport:
			r.post(replicaEvent{spans: v, wireBytes: v.EncodedLen()})
		case *wire.MetricsReport:
			r.post(replicaEvent{metrics: v})
		case *wire.Error:
			r.post(replicaEvent{down: errors.New(v.Message)})
			return
		}
	}
}

// submit ships the router's shared encoding (already tagged for the role)
// and reports the payload bytes sent.
func (r *Remote) submit(rid, trace uint64, enc []byte, inputs map[string]*tensor.Tensor, verify bool) (int, error) {
	if enc == nil {
		// No shared encoding (all-local batch that failed over to a remote):
		// encode just for this send.
		var m wire.Msg = &wire.Batch{ID: rid, Trace: trace, Tensors: inputs}
		n := batchWireBytes(inputs)
		if verify {
			m = &wire.Verify{ID: rid, Trace: trace, Tensors: inputs}
		}
		return n, wire.Send(r.conn, m)
	}
	return len(enc), wire.SendEncoded(r.conn, enc)
}

// pollMetrics requests the remote registry's snapshot; the reader posts the
// answer as a metrics event. Best-effort: a send failure fails the reader,
// which reports the replica down.
func (r *Remote) pollMetrics(seq uint64) {
	_ = wire.Send(r.conn, &wire.MetricsPoll{Seq: seq})
}

// announce fans the leader's digest to the replica, preferring the router's
// shared encode-once payload.
func (r *Remote) announce(enc []byte, d *wire.Digest) (int, error) {
	if enc == nil {
		return wire.DigestFrameLen, wire.Send(r.conn, d)
	}
	return len(enc), wire.SendEncoded(r.conn, enc)
}

// resultWireBytes reconstructs the encoded payload size of a received Result.
func resultWireBytes(v *wire.Result) int {
	n := 1 + 8 + 8 + 2 + len(v.VariantID) + 2 + len(v.Err) + 4
	for name, t := range v.Tensors {
		n += 2 + len(name) + t.EncodedSize()
	}
	return n
}

// batchWireBytes is the encoded payload size of a Batch/Verify message.
func batchWireBytes(ts map[string]*tensor.Tensor) int {
	n := 1 + 8 + 8 + 2 + 2 + 4
	for name, t := range ts {
		n += 2 + len(name) + t.EncodedSize()
	}
	return n
}
