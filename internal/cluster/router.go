package cluster

import (
	"errors"
	"fmt"
	"time"

	"sync"

	"repro/internal/check"
	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/transcript"
	"repro/internal/wire"
)

// ErrRouterStopped is returned by Submit after Close.
var ErrRouterStopped = errors.New("cluster: router stopped")

// RouterConfig configures the cluster tier's front door.
type RouterConfig struct {
	// Replicas are the engine replicas to route over; at least one.
	Replicas []Replica
	// Verify is the number of follower replicas that cross-check each batch.
	// Zero disables cross-checking (pure load balancing with failover).
	Verify int
	// Mode selects how followers report: DigestForward (the default, 46-byte
	// votes) or TensorForward (full output tensors, the naive baseline).
	Mode ForwardMode
	// Sync holds each result until every follower vote is accounted, failing
	// the batch with ErrDivergence on dissent. Async (the default) delivers
	// at the leader's result and records late dissent in telemetry.
	Sync bool
	// PlacementKey seeds the rendezvous candidate order (typically the model
	// ID); routers sharing a key and replica set prefer the same leaders.
	PlacementKey string
	// MaxInFlight caps batches the router holds open; Submit blocks at the
	// cap. Default 64. Keep below each engine's own in-flight ceiling so
	// replica submission never wedges on engine backpressure.
	MaxInFlight int
	// MaxRetries bounds failover resubmissions per batch. Default 2.
	MaxRetries int
	// VoteTimeout bounds how long a delivered-or-deliverable batch waits for
	// follower votes before the stragglers are counted as abstentions.
	// Default 2s.
	VoteTimeout time.Duration
	// Metrics receives the cluster series; nil disables.
	Metrics *telemetry.Registry
	// Tracer receives the router's own spans and the merged replica span
	// reports (trace federation); nil uses telemetry.DefaultTracer, so
	// /trace on the router process serves the full cross-node tree.
	Tracer *telemetry.Tracer
	// MetricsInterval is the metrics-federation poll cadence over each
	// replica's status channel. Zero means 2s; negative disables polling.
	MetricsInterval time.Duration
	// Flight, when set, receives incident triggers (failover, dissent,
	// replica down, ladder demotion) so /debug/flight captures a
	// before/after window around every cluster health event. Optional.
	Flight *telemetry.FlightRecorder
	// Transcript, when set, receives one audit leaf per routed batch: the
	// leader's checkpoint digests, every follower's vote, and the delivered
	// output digest, keyed by the federation trace ID. All recorder calls
	// are non-blocking, so they are safe under r.mu. Optional.
	Transcript *transcript.Recorder
}

// pendingBatch is one open batch in the router's ID namespace.
type pendingBatch struct {
	id     uint64
	trace  uint64 // federation trace ID, zero when tracing is off
	inputs map[string]*tensor.Tensor
	leader int
	// followers tracks replica indices whose vote is still outstanding.
	followers map[int]bool
	res       *monitor.BatchResult // leader result, held in sync mode
	resAt     time.Time            // when the leader result arrived (vote timeout base)
	leaderSum check.Digest
	hasSum    bool
	announced bool
	delivered bool
	dissent   bool
	// earlyVotes parks follower digests that arrived before the leader's
	// result fixed the reference sum.
	earlyVotes map[int]check.Digest
	// stageSums holds the first-seen digest per checkpoint stage for
	// best-effort early dissent detection (owner index + sum).
	stageSums map[int32]stageSum
	retries   int
	born      time.Time
}

type stageSum struct {
	idx int
	sum check.Digest
}

type replicaState struct {
	up       bool
	ladder   []int
	spares   int
	inflight int // outstanding leader batches
	checks   int // outstanding follower cross-checks
	worst    int // last heartbeat's worst rung (demotion trigger edge)
}

// replicaMetricsState is the latest federated snapshot from one replica.
type replicaMetricsState struct {
	at     time.Time
	series []telemetry.MetricSnapshot
}

// ReplicaMetrics is one replica's most recent metrics-federation snapshot,
// as served by ClusterMetrics (and /metrics/cluster on mvtee-serve).
type ReplicaMetrics struct {
	Replica string
	Age     time.Duration
	Series  []telemetry.MetricSnapshot
}

// Router fronts N replica engines as one serve.Engine: it places each batch
// on a leader replica, fans cross-check work to followers, verifies their
// digest votes, and fails batches over when a replica goes down or halts —
// all under its own stable batch-ID namespace, so the serving tier's demux
// is oblivious to which replica served what. It also implements
// control.Pipeline: the controller's window actuations fan out to every
// replica.
type Router struct {
	cfg    RouterConfig
	reps   []Replica
	order  []int // rendezvous candidate order for PlacementKey
	tracer *telemetry.Tracer

	out      chan monitor.BatchResult
	deliverq chan monitor.BatchResult
	events   chan replicaEvent
	slots    chan struct{}
	stop     chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
	// dispatchWG tracks the per-batch dispatch goroutines: Submit returns as
	// soon as the batch is placed and registered, and the marshal + seal +
	// socket write happen off the caller's goroutine — the serving scheduler's
	// flush loop must never stall on the wire.
	dispatchWG sync.WaitGroup
	nextID     uint64 // guarded by mu

	mu         sync.Mutex
	closed     bool
	state      []replicaState
	pending    map[uint64]*pendingBatch
	pollSeq    uint64
	repMetrics []replicaMetricsState

	m routerMetrics
}

type routerMetrics struct {
	replicas    *telemetry.Gauge
	batches     *telemetry.Counter
	failovers   *telemetry.Counter
	routeNs     *telemetry.Histogram
	dissent     *telemetry.Counter
	votes       [3]*telemetry.Counter // agree, dissent, abstain
	fwd         [3]*telemetry.Counter // input, result, digest planes
	up          []*telemetry.Gauge
	rung        []*telemetry.Gauge
	inflight    []*telemetry.Gauge
	spanReports *telemetry.Counter
	spansMerged *telemetry.Counter
	spanBytes   *telemetry.Counter
	polls       *telemetry.Counter
}

const (
	voteAgree = iota
	voteDissent
	voteAbstain
)

const (
	planeInput = iota
	planeResult
	planeDigest
)

// NewRouter validates the configuration, attaches every replica and starts
// the routing loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: no replicas")
	}
	if cfg.Verify >= len(cfg.Replicas) {
		return nil, fmt.Errorf("cluster: verify %d needs %d replicas, have %d",
			cfg.Verify, cfg.Verify+1, len(cfg.Replicas))
	}
	if cfg.Verify < 0 {
		return nil, errors.New("cluster: negative verify")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	if cfg.VoteTimeout <= 0 {
		cfg.VoteTimeout = 2 * time.Second
	}
	if cfg.PlacementKey == "" {
		cfg.PlacementKey = "default"
	}
	if cfg.MetricsInterval == 0 {
		cfg.MetricsInterval = 2 * time.Second
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.DefaultTracer
	}
	ids := make([]string, len(cfg.Replicas))
	seen := make(map[string]bool, len(ids))
	for i, rep := range cfg.Replicas {
		ids[i] = rep.ID()
		if seen[ids[i]] {
			return nil, fmt.Errorf("cluster: duplicate replica ID %q", ids[i])
		}
		seen[ids[i]] = true
	}
	r := &Router{
		cfg:    cfg,
		reps:   cfg.Replicas,
		order:  rendezvousOrder(cfg.PlacementKey, ids),
		tracer: cfg.Tracer,
		// deliverq is buffered to the in-flight cap so enqueueing a result
		// under the router lock can never block: every open batch owns one
		// slot and delivers at most once. The delivery goroutine moves rows
		// to out, so consumer backpressure stalls slots, never the lock.
		out:      make(chan monitor.BatchResult, cfg.MaxInFlight),
		deliverq: make(chan monitor.BatchResult, cfg.MaxInFlight),
		events:   make(chan replicaEvent, 4*len(cfg.Replicas)+64),
		slots:    make(chan struct{}, cfg.MaxInFlight),
		stop:     make(chan struct{}),
		state:    make([]replicaState, len(cfg.Replicas)),
		pending:  make(map[uint64]*pendingBatch),
	}
	r.repMetrics = make([]replicaMetricsState, len(cfg.Replicas))
	for i := range r.state {
		// Replicas start healthy-until-told-otherwise; the initial status
		// heartbeat (sent at attach) corrects this within one event.
		r.state[i] = replicaState{up: true, worst: int(monitor.LadderFull)}
	}
	r.initMetrics(ids)
	for i, rep := range r.reps {
		rep.attach(i, r.events, r.tracer)
	}
	r.wg.Add(3)
	go r.loop()
	go r.delivery()
	go r.sweeper()
	if cfg.MetricsInterval > 0 {
		r.wg.Add(1)
		go r.collector()
	}
	return r, nil
}

func (r *Router) initMetrics(ids []string) {
	// The per-replica slices are always allocated; with no registry their
	// elements stay nil and every Gauge/Counter method is a nil-safe no-op.
	r.m.up = make([]*telemetry.Gauge, len(ids))
	r.m.rung = make([]*telemetry.Gauge, len(ids))
	r.m.inflight = make([]*telemetry.Gauge, len(ids))
	reg := r.cfg.Metrics
	if reg == nil {
		return
	}
	r.m.replicas = reg.Gauge(telemetry.MetricClusterReplicas)
	r.m.replicas.Set(int64(len(ids)))
	r.m.batches = reg.Counter(telemetry.MetricClusterBatches)
	r.m.failovers = reg.Counter(telemetry.MetricClusterFailovers)
	r.m.routeNs = reg.Histogram(telemetry.MetricClusterRouteNs)
	r.m.dissent = reg.Counter(telemetry.MetricClusterStageDissent)
	for i, v := range []string{telemetry.DigestVoteAgree, telemetry.DigestVoteDissent, telemetry.DigestVoteAbstain} {
		r.m.votes[i] = reg.Counter(telemetry.MetricClusterDigestVotes, telemetry.L("verdict", v))
	}
	for i, p := range []string{telemetry.ForwardPlaneInput, telemetry.ForwardPlaneResult, telemetry.ForwardPlaneDigest} {
		r.m.fwd[i] = reg.Counter(telemetry.MetricClusterFwdBytes, telemetry.L("plane", p))
	}
	r.m.spanReports = reg.Counter(telemetry.MetricClusterSpanReports)
	r.m.spansMerged = reg.Counter(telemetry.MetricClusterSpansMerged)
	r.m.spanBytes = reg.Counter(telemetry.MetricClusterSpanBytes)
	r.m.polls = reg.Counter(telemetry.MetricClusterMetricPolls)
	for i, id := range ids {
		l := telemetry.L("replica", id)
		r.m.up[i] = reg.Gauge(telemetry.MetricClusterReplicaUp, l)
		r.m.up[i].Set(1)
		r.m.rung[i] = reg.Gauge(telemetry.MetricClusterReplicaRung, l)
		r.m.inflight[i] = reg.Gauge(telemetry.MetricClusterInflight, l)
	}
}

// Close stops routing and closes every replica handle. In-flight batches are
// failed with ErrRouterStopped by the loop shutting down.
func (r *Router) Close() error {
	r.once.Do(func() { close(r.stop) })
	// Refuse new submissions before closing the connections: Submit's
	// dispatchWG.Add must not race Close's Wait.
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	var err error
	for _, rep := range r.reps {
		if e := rep.Close(); e != nil && err == nil {
			err = e
		}
	}
	// In-flight dispatch sends fail fast once the connections are down and
	// resolve through failover, so this wait is bounded.
	r.dispatchWG.Wait()
	r.wg.Wait()
	return err
}

// Outputs returns the completed-batch stream (serve.Engine).
func (r *Router) Outputs() <-chan monitor.BatchResult { return r.out }

// Ladder reports the element-wise best rung across healthy replicas: the
// capability the cluster can still serve, which is what admission should
// gate on (serve.Engine, control.Pipeline).
func (r *Router) Ladder() []monitor.LadderRung {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best []int
	for i := range r.state {
		st := &r.state[i]
		if !st.up {
			continue
		}
		for j, rung := range st.ladder {
			if j >= len(best) {
				best = append(best, rung)
			} else if rung > best[j] {
				best[j] = rung
			}
		}
	}
	out := make([]monitor.LadderRung, len(best))
	for i, rung := range best {
		out[i] = monitor.LadderRung(rung)
	}
	return out
}

// InflightWindow reports the widest replica window (control.Pipeline).
func (r *Router) InflightWindow() int {
	w := 0
	for _, rep := range r.reps {
		if rw := rep.InflightWindow(); rw > w {
			w = rw
		}
	}
	return w
}

// SetInflightWindow fans the controller's window actuation to every replica
// (control.Pipeline). Remote replicas receive it as a scoped ReplicaTune.
func (r *Router) SetInflightWindow(n int) {
	for _, rep := range r.reps {
		rep.SetInflightWindow(n)
	}
}

// healthy reports whether a replica can accept new work: up and no halted
// stage on its last heartbeat.
func (st *replicaState) healthy() bool {
	if !st.up {
		return false
	}
	for _, rung := range st.ladder {
		if rung == int(monitor.LadderHalted) {
			return false
		}
	}
	return true
}

// place picks a leader and follower set: the least-loaded healthy replica in
// rendezvous order leads (ties go to the earlier candidate), the next
// healthy candidates follow. Caller holds r.mu.
func (r *Router) place(exclude int) (leader int, followers []int, err error) {
	leader = -1
	for _, idx := range r.order {
		st := &r.state[idx]
		if idx == exclude || !st.healthy() {
			continue
		}
		if leader < 0 || st.inflight < r.state[leader].inflight {
			leader = idx
		}
	}
	if leader < 0 {
		return 0, nil, ErrNoHealthyReplica
	}
	for _, idx := range r.order {
		if len(followers) == r.cfg.Verify {
			break
		}
		if idx == leader || idx == exclude || !r.state[idx].healthy() {
			continue
		}
		followers = append(followers, idx)
	}
	return leader, followers, nil
}

// Submit routes one batch (serve.Engine): leader placement and registration
// happen inline, then the encode-once dispatch and follower fan-out run on
// their own goroutine — the marshal, seal and socket writes must not ride the
// caller's critical path, or the serving scheduler's flush loop serializes
// with the wire and a multi-replica tier can never out-run one engine.
// Blocks at MaxInFlight.
func (r *Router) Submit(inputs map[string]*tensor.Tensor) (uint64, error) {
	select {
	case r.slots <- struct{}{}:
	case <-r.stop:
		return 0, ErrRouterStopped
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.slots
		return 0, ErrRouterStopped
	}
	r.nextID++
	id := r.nextID
	leader, followers, err := r.place(-1)
	if err != nil {
		r.mu.Unlock()
		<-r.slots
		return 0, err
	}
	pb := &pendingBatch{
		id: id,
		// One federation trace ID per routed batch: every replica engine the
		// batch touches records its spans under it, and the harvested reports
		// merge back into r.tracer as one cross-node tree.
		trace:     telemetry.NewTraceID(),
		inputs:    inputs,
		leader:    leader,
		followers: make(map[int]bool, len(followers)),
		born:      time.Now(),
	}
	for _, f := range followers {
		pb.followers[f] = true
	}
	r.pending[id] = pb
	r.noteDispatch(pb, +1)
	r.dispatchWG.Add(1)
	r.mu.Unlock()
	r.m.batches.Inc()
	// Open the audit leaf before dispatch can produce checkpoint or vote
	// events for this batch (the recorder orders per-batch events by arrival).
	r.cfg.Transcript.Begin(pb.trace, id, inputs)
	go func() {
		defer r.dispatchWG.Done()
		if err := r.dispatch(pb, leader, followers); err != nil {
			// The leader send failed outright; fail over immediately rather
			// than waiting for its down event.
			r.failover(pb.id, leader, err)
		}
	}()
	return id, nil
}

// noteDispatch adjusts per-replica load accounting for a batch's current
// role assignment. Caller holds r.mu.
func (r *Router) noteDispatch(pb *pendingBatch, delta int) {
	r.state[pb.leader].inflight += delta
	r.m.inflight[pb.leader].Set(int64(r.state[pb.leader].inflight))
	for f := range pb.followers {
		r.state[f].checks += delta
	}
}

// dispatch encodes the batch at most once and sends it to the leader (as
// TBatch) and followers (retagged TVerify in digest mode; TBatch in tensor
// mode, so followers ship full results). Runs outside r.mu: sends can block
// on sockets.
func (r *Router) dispatch(pb *pendingBatch, leader int, followers []int) error {
	start := time.Now()
	var payload []byte
	needEnc := !isLocal(r.reps[leader])
	for _, f := range followers {
		needEnc = needEnc || !isLocal(r.reps[f])
	}
	if needEnc {
		buf := wire.MarshalBatch(&wire.Batch{ID: pb.id, Trace: pb.trace, Tensors: pb.inputs})
		defer buf.Free()
		payload = buf.Payload()
	}
	n, err := r.reps[leader].submit(pb.id, pb.trace, payload, pb.inputs, false)
	r.m.fwd[planeInput].Add(uint64(n))
	if err != nil {
		return err
	}
	if pb.trace != 0 {
		r.tracer.Record(telemetry.Span{
			Trace: pb.trace, Batch: pb.id, Name: "dispatch", Stage: -1,
			Start: start.UnixNano(), End: time.Now().UnixNano(),
		})
	}
	verify := r.cfg.Mode == DigestForward
	if payload != nil && verify {
		wire.RetagVerify(payload)
	}
	for _, f := range followers {
		n, err := r.reps[f].submit(pb.id, pb.trace, payload, pb.inputs, verify)
		r.m.fwd[planeInput].Add(uint64(n))
		if err != nil {
			// A follower we cannot reach abstains; the batch proceeds.
			r.mu.Lock()
			if pb.followers[f] {
				delete(pb.followers, f)
				r.state[f].checks--
			}
			done := r.completeLocked(pb)
			r.mu.Unlock()
			r.m.votes[voteAbstain].Inc()
			_ = done
		}
	}
	return nil
}

func isLocal(rep Replica) bool {
	_, ok := rep.(*Local)
	return ok
}

// loop is the router's event consumer: results, votes, heartbeats and
// failures all funnel through here.
func (r *Router) loop() {
	defer r.wg.Done()
	for {
		select {
		case ev := <-r.events:
			switch {
			case ev.res != nil:
				r.onResult(ev)
			case ev.vote != nil:
				r.onVote(ev)
			case ev.status != nil:
				r.onStatus(ev)
			case ev.spans != nil:
				r.onSpans(ev)
			case ev.metrics != nil:
				r.onMetrics(ev)
			case ev.down != nil:
				r.onDown(ev)
			}
		case <-r.stop:
			r.drainPending()
			return
		}
	}
}

// drainPending fails every open batch on shutdown so serve's demux rows
// resolve instead of leaking.
func (r *Router) drainPending() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, pb := range r.pending {
		delete(r.pending, id)
		if !pb.delivered {
			// Bypass the delivery queue: its goroutine may already have
			// drained and exited. Best-effort — the consumer is shutting
			// down with us.
			pb.delivered = true
			select {
			case r.out <- monitor.BatchResult{ID: id, Err: ErrRouterStopped}:
			default:
			}
		}
	}
}

// onResult handles a replica's completed batch: the leader's is the batch
// result; a follower's (tensor mode) is a full-tensor cross-check.
func (r *Router) onResult(ev replicaEvent) {
	r.m.fwd[planeResult].Add(uint64(ev.wireBytes))
	res := ev.res
	r.mu.Lock()
	pb := r.pending[res.ID]
	if pb == nil {
		r.mu.Unlock()
		return // stale: already delivered or failed over and resolved
	}
	if ev.idx != pb.leader {
		if pb.followers[ev.idx] {
			// Tensor-mode cross-check: digest the follower's outputs at the
			// router and treat it as a vote.
			sum, abstain := check.Digest{}, res.Err != nil
			if !abstain {
				sum = check.DigestOf(res.Tensors)
			}
			if !abstain && !pb.hasSum {
				// Follower finished before the leader: park until the
				// leader result fixes the reference sum.
				if pb.earlyVotes == nil {
					pb.earlyVotes = make(map[int]check.Digest)
				}
				pb.earlyVotes[ev.idx] = sum
			} else {
				r.applyVoteLocked(pb, ev.idx, sum, abstain, false, false)
				r.completeLocked(pb)
			}
		}
		r.mu.Unlock()
		return // else: stale pre-failover leader result — first delivery won
	}
	if res.Err != nil && pb.retries < r.cfg.MaxRetries && !r.state[ev.idx].healthy() {
		// The leader failed the batch and its engine is degraded past
		// serving: treat as replica failure, not batch failure.
		r.mu.Unlock()
		r.failover(res.ID, ev.idx, res.Err)
		return
	}
	// The leader result stands. Fix the reference digest, resolve parked
	// early votes, then fan the announce to remote followers.
	pb.res, pb.resAt = res, time.Now()
	if res.Err != nil {
		// A failed batch has no reference to verify against: outstanding
		// cross-checks resolve as abstentions (the error is the outcome).
		for f := range pb.followers {
			r.applyVoteLocked(pb, f, check.Digest{}, true, false, false)
		}
	} else if len(pb.followers) > 0 || len(pb.earlyVotes) > 0 {
		pb.leaderSum, pb.hasSum = check.DigestOf(res.Tensors), true
	}
	for idx, sum := range pb.earlyVotes {
		if pb.followers[idx] {
			r.applyVoteLocked(pb, idx, sum, false, false, false)
		}
	}
	pb.earlyVotes = nil
	needAnnounce := pb.hasSum && !pb.announced && r.cfg.Mode == DigestForward
	pb.announced = pb.announced || needAnnounce
	var targets []int
	if needAnnounce {
		for f := range pb.followers {
			if !isLocal(r.reps[f]) {
				targets = append(targets, f)
			}
		}
	}
	done := r.completeLocked(pb)
	async := len(targets) > 0 && !done && !r.closed
	if async {
		r.dispatchWG.Add(1)
	}
	r.mu.Unlock()
	if async {
		// The announce write runs off the event loop: the loop is the only
		// consumer of the events channel, and a socket write here can deadlock
		// the whole tier — readers block posting events, replica servers block
		// writing frames, engines block delivering, and the batch dispatch
		// holding this conn's write lock never finishes.
		go func() {
			defer r.dispatchWG.Done()
			r.announce(pb, targets)
		}()
	}
}

// announce fans the leader's final digest to remote followers, encoded once.
func (r *Router) announce(pb *pendingBatch, targets []int) {
	d := &wire.Digest{ID: pb.id, Stage: -1, Sum: pb.leaderSum}
	buf := wire.MarshalDigest(d)
	defer buf.Free()
	payload := buf.Payload()
	for _, f := range targets {
		n, err := r.reps[f].announce(payload, d)
		r.m.fwd[planeDigest].Add(uint64(n))
		if err != nil {
			// Unreachable follower: its vote will resolve as a timeout
			// abstention; the down event handles the rest.
			continue
		}
	}
}

// onVote handles a verification-plane frame: a follower's final verdict, a
// parked-early digest, or a best-effort stage digest.
func (r *Router) onVote(ev replicaEvent) {
	v := ev.vote
	r.m.fwd[planeDigest].Add(uint64(ev.wireBytes))
	r.mu.Lock()
	defer r.mu.Unlock()
	pb := r.pending[v.ID]
	if pb == nil {
		return
	}
	if v.Stage >= 0 {
		r.onStageDigestLocked(pb, ev.idx, v)
		return
	}
	if !v.Vote || !pb.followers[ev.idx] {
		return // not a verdict, or follower already resolved/removed
	}
	var zero check.Digest
	sum := check.Digest(v.Sum)
	abstain := sum == zero
	if ev.localVote && !abstain && !pb.hasSum {
		// Local follower finished before the leader: park until the leader
		// result fixes the reference sum.
		if pb.earlyVotes == nil {
			pb.earlyVotes = make(map[int]check.Digest)
		}
		pb.earlyVotes[ev.idx] = sum
		return
	}
	r.applyVoteLocked(pb, ev.idx, sum, abstain, !ev.localVote, v.Agree)
	r.completeLocked(pb)
}

// applyVoteLocked resolves one follower's verdict. For authoritative votes
// (remote followers compared the announce themselves) agree is taken as-is;
// otherwise the router compares sum against the leader's. Caller holds r.mu.
func (r *Router) applyVoteLocked(pb *pendingBatch, idx int, sum check.Digest, abstain, authoritative, agree bool) {
	if !pb.followers[idx] {
		return
	}
	delete(pb.followers, idx)
	r.state[idx].checks--
	switch {
	case abstain:
		r.m.votes[voteAbstain].Inc()
		r.cfg.Transcript.Vote(pb.id, r.reps[idx].ID(), check.Digest{}, false)
	case authoritative && agree, !authoritative && pb.hasSum && sum == pb.leaderSum:
		r.m.votes[voteAgree].Inc()
		r.cfg.Transcript.Vote(pb.id, r.reps[idx].ID(), sum, true)
	default:
		r.m.votes[voteDissent].Inc()
		r.cfg.Transcript.Vote(pb.id, r.reps[idx].ID(), sum, false)
		pb.dissent = true
		// Lock order is safe: the flight sampler reads its sources without
		// holding its own lock, so r.mu -> flight.mu never inverts.
		r.cfg.Flight.Trigger(telemetry.FlightReasonDissent)
	}
}

// onStageDigestLocked records best-effort per-checkpoint digests: the first
// replica to report a stage owns the reference; a different replica
// reporting a different digest for the same stage is early dissent. The
// final vote remains the correctness backbone. Caller holds r.mu.
func (r *Router) onStageDigestLocked(pb *pendingBatch, idx int, v *wire.Digest) {
	if pb.stageSums == nil {
		pb.stageSums = make(map[int32]stageSum)
	}
	prev, ok := pb.stageSums[v.Stage]
	if !ok {
		pb.stageSums[v.Stage] = stageSum{idx: idx, sum: check.Digest(v.Sum)}
		// The first-seen digest is the reference this batch's audit leaf
		// carries for the stage; later conflicting reports surface as votes.
		r.cfg.Transcript.Checkpoint(pb.id, int(v.Stage), check.Digest(v.Sum))
		return
	}
	if prev.idx != idx && prev.sum != check.Digest(v.Sum) {
		r.m.dissent.Inc()
	}
}

// completeLocked delivers the batch if its gates allow and reports whether
// the batch is fully resolved. Caller holds r.mu.
func (r *Router) completeLocked(pb *pendingBatch) bool {
	if r.pending[pb.id] == nil {
		return true // already resolved (failover race)
	}
	if pb.res == nil {
		return false // leader still running
	}
	votesIn := len(pb.followers) == 0
	if !pb.delivered {
		if r.cfg.Sync && !votesIn {
			return false // hold for votes
		}
		res := *pb.res
		if pb.dissent {
			res.Err, res.Tensors = ErrDivergence, nil
		}
		r.deliverLocked(pb, &res)
	} else if pb.dissent {
		// Async mode: dissent after delivery — surface via telemetry only
		// (the row is gone); counted by applyVoteLocked already.
		_ = pb
	}
	if votesIn {
		delete(r.pending, pb.id)
		r.noteDispatch(pb, -1)
	}
	return votesIn
}

// deliverLocked enqueues the result row; the delivery goroutine moves it to
// the output stream and releases the batch's slot. deliverq is sized to
// MaxInFlight and each slot delivers at most once, so the enqueue never
// blocks. Caller holds r.mu.
func (r *Router) deliverLocked(pb *pendingBatch, res *monitor.BatchResult) {
	pb.delivered = true
	res.ID = pb.id
	now := time.Now()
	res.Latency = now.Sub(pb.born)
	if t := r.cfg.Transcript; t != nil {
		if res.Err != nil {
			t.Abort(pb.id)
		} else {
			t.Deliver(pb.id, res.Tensors, uint8(r.state[pb.leader].worst), r.reps[pb.leader].ID())
		}
	}
	r.deliverq <- *res
	r.m.routeNs.Observe(res.Latency.Nanoseconds())
	if pb.trace != 0 {
		// The router's root span: placement through delivery. Replica-side
		// spans for the same trace nest inside it once their reports merge.
		r.tracer.Record(telemetry.Span{
			Trace: pb.trace, Batch: pb.id, Name: "route", Stage: -1,
			Start: pb.born.UnixNano(), End: now.UnixNano(),
		})
	}
}

// delivery is the single mover from the internal queue to the consumer
// stream. Consumer backpressure blocks here — holding the batch's slot, so
// Submit stalls — never under r.mu.
func (r *Router) delivery() {
	defer r.wg.Done()
	for {
		select {
		case res := <-r.deliverq:
			select {
			case r.out <- res:
			case <-r.stop:
				// Shutdown: flush what fits, drop the rest (the consumer is
				// going away with us).
				select {
				case r.out <- res:
				default:
				}
			}
			<-r.slots
		case <-r.stop:
			for {
				select {
				case res := <-r.deliverq:
					select {
					case r.out <- res:
					default:
					}
					<-r.slots
				default:
					return
				}
			}
		}
	}
}

// onStatus applies a replica heartbeat. A replica that reports a halted
// stage stops receiving new work; its in-flight batches fail over when their
// results come back failed (the engine errors batches reaching a halted
// stage, so nothing re-executes speculatively).
func (r *Router) onStatus(ev replicaEvent) {
	r.mu.Lock()
	st := &r.state[ev.idx]
	st.ladder = ev.status.Ladder
	st.spares = ev.status.Spares
	worst := int(monitor.LadderFull)
	for _, rung := range st.ladder {
		if rung < worst {
			worst = rung
		}
	}
	demoted := worst < st.worst
	st.worst = worst
	r.mu.Unlock()
	r.m.rung[ev.idx].Set(int64(worst))
	if demoted {
		r.cfg.Flight.Trigger(telemetry.FlightReasonDemotion)
	}
}

// onSpans merges one replica's harvested spans into the router's ring,
// stamped with the reporting replica's identity — the receive side of trace
// federation. Span bytes are accounted on their own counter so observability
// traffic never pollutes the forward-plane cost split.
func (r *Router) onSpans(ev replicaEvent) {
	rep := ev.spans
	r.m.spanReports.Inc()
	r.m.spanBytes.Add(uint64(ev.wireBytes))
	r.m.spansMerged.Add(uint64(len(rep.Spans)))
	for i := range rep.Spans {
		s := rep.Spans[i]
		s.Replica = rep.Replica
		r.tracer.Record(s)
	}
}

// onMetrics stores one replica's federated registry snapshot.
func (r *Router) onMetrics(ev replicaEvent) {
	r.mu.Lock()
	r.repMetrics[ev.idx] = replicaMetricsState{at: time.Now(), series: ev.metrics.Series}
	r.mu.Unlock()
}

// ClusterMetrics returns the latest federated snapshot per replica (replicas
// that never answered a poll are omitted). The backing slices are shared
// with the collector's stored state and must be treated as read-only.
func (r *Router) ClusterMetrics() []ReplicaMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ReplicaMetrics, 0, len(r.reps))
	for i, rep := range r.reps {
		st := r.repMetrics[i]
		if st.series == nil {
			continue
		}
		out = append(out, ReplicaMetrics{Replica: rep.ID(), Age: time.Since(st.at), Series: st.series})
	}
	return out
}

// collector drives metrics federation: on each tick it polls every up
// replica's registry over its existing status channel; answers land as
// metrics events. Skips entirely while telemetry is disabled.
func (r *Router) collector() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.MetricsInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if !telemetry.Enabled() {
				continue
			}
			r.mu.Lock()
			r.pollSeq++
			seq := r.pollSeq
			up := make([]bool, len(r.reps))
			for i := range r.state {
				up[i] = r.state[i].up
			}
			r.mu.Unlock()
			for i, rep := range r.reps {
				if !up[i] {
					continue
				}
				rep.pollMetrics(seq)
				r.m.polls.Inc()
			}
		case <-r.stop:
			return
		}
	}
}

// onDown marks the replica lost and fails its batches over: leader batches
// resubmit to a healthy peer under the same router ID; follower cross-checks
// resolve as abstentions.
func (r *Router) onDown(ev replicaEvent) {
	r.mu.Lock()
	st := &r.state[ev.idx]
	if !st.up {
		r.mu.Unlock()
		return
	}
	st.up = false
	r.m.up[ev.idx].Set(0)
	var orphans []uint64
	for id, pb := range r.pending {
		if pb.leader == ev.idx && pb.res == nil {
			orphans = append(orphans, id)
		}
		if pb.followers[ev.idx] {
			r.applyVoteLocked(pb, ev.idx, check.Digest{}, true, false, false)
			r.completeLocked(pb)
		}
	}
	r.mu.Unlock()
	r.cfg.Flight.Trigger(telemetry.FlightReasonReplicaDown)
	for _, id := range orphans {
		r.failover(id, ev.idx, ev.down)
	}
}

// failover re-places one batch away from a failed leader and resubmits it
// under its original router ID, so the serving tier's demux sees exactly one
// row per batch no matter how many replicas touched it.
func (r *Router) failover(id uint64, from int, cause error) {
	r.mu.Lock()
	pb := r.pending[id]
	if pb == nil || pb.leader != from || pb.res != nil {
		r.mu.Unlock()
		return // resolved or already re-placed by a concurrent path
	}
	if pb.retries >= r.cfg.MaxRetries {
		r.resolveFailedLocked(pb, fmt.Errorf("cluster: batch %d exhausted failover retries: %w", id, cause))
		r.mu.Unlock()
		return
	}
	leader, _, err := r.place(from)
	if err != nil {
		r.resolveFailedLocked(pb, err)
		r.mu.Unlock()
		return
	}
	pb.retries++
	// Re-home the load accounting: the old leader's share moves to the new.
	r.state[pb.leader].inflight--
	r.m.inflight[pb.leader].Set(int64(r.state[pb.leader].inflight))
	pb.leader = leader
	r.state[leader].inflight++
	r.m.inflight[leader].Set(int64(r.state[leader].inflight))
	// Followers on the failed replica resolve as abstentions.
	if pb.followers[from] {
		r.applyVoteLocked(pb, from, check.Digest{}, true, false, false)
	}
	inputs, trace := pb.inputs, pb.trace
	resubmit := !r.closed
	if resubmit {
		r.dispatchWG.Add(1)
	}
	r.mu.Unlock()
	r.m.failovers.Inc()
	r.cfg.Flight.Trigger(telemetry.FlightReasonFailover)
	if !resubmit {
		return // Close drains the batch with ErrRouterStopped
	}
	// The resubmission keeps the original trace ID, so the new leader's spans
	// land in the same tree as the failed attempt's. Like dispatch and
	// announce it runs on its own goroutine: failover fires from the event
	// loop (down events, failed leader results), and the loop must never
	// block on a socket write — it is the only drain for the events channel
	// every conn reader posts into.
	go func() {
		defer r.dispatchWG.Done()
		n, err := r.reps[leader].submit(id, trace, nil, inputs, false)
		r.m.fwd[planeInput].Add(uint64(n))
		if err != nil {
			r.failover(id, leader, err)
		}
	}()
}

// resolveFailedLocked fails the batch outright: no healthy peer or retries
// exhausted. Caller holds r.mu.
func (r *Router) resolveFailedLocked(pb *pendingBatch, err error) {
	if !pb.delivered {
		r.deliverLocked(pb, &monitor.BatchResult{Err: err})
	}
	delete(r.pending, pb.id)
	r.noteDispatch(pb, -1)
}

// sweeper resolves batches whose follower votes never arrived: after
// VoteTimeout past the leader result, stragglers count as abstentions.
func (r *Router) sweeper() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.VoteTimeout / 2)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			r.mu.Lock()
			var expired []*pendingBatch
			for _, pb := range r.pending {
				if pb.res != nil && len(pb.followers) > 0 && now.Sub(pb.resAt) > r.cfg.VoteTimeout {
					expired = append(expired, pb)
				}
			}
			for _, pb := range expired {
				for f := range pb.followers {
					r.applyVoteLocked(pb, f, check.Digest{}, true, false, false)
				}
				r.completeLocked(pb)
			}
			r.mu.Unlock()
		case <-r.stop:
			return
		}
	}
}
