// Package serve is the multi-tenant serving front-end: it multiplexes many
// concurrent client sessions onto one MVX engine. Single-input requests are
// coalesced into engine batches under a max-batch-size/max-delay window
// (dynamic micro-batching) and demultiplexed back to callers by request ID;
// bounded per-tenant and global queues provide admission control with
// explicit backpressure (reject-with-retry-after, never unbounded
// buffering); a weighted round-robin scheduler with priority lanes keeps
// tenants fair; and the degradation ladder drives load shedding so the
// front door lightens the engine's load before the engine has to demote.
//
// Batching contract: a request's input tensors all share leading dimension
// r (the item count, usually 1). Requests are compatible — and may share an
// engine batch — when they carry the same input names with the same
// per-item shapes. The model must treat the leading dimension as a batch
// axis: every graph output's leading dimension equals the sum of the
// batch's item counts, which is how results are split back per caller.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Engine is the slice of monitor.Engine the server drives. Submit must block
// for pipeline backpressure and return a unique batch ID; Outputs delivers
// one result per submitted batch; Ladder reports per-stage degradation.
type Engine interface {
	Submit(inputs map[string]*tensor.Tensor) (uint64, error)
	Outputs() <-chan monitor.BatchResult
	Ladder() []monitor.LadderRung
}

// Priority selects a request's scheduling lane. Lower values are more
// urgent; shedding drops lanes lowest-first.
type Priority int

// Priority lanes, most to least urgent.
const (
	High Priority = iota
	Normal
	Low
	numLanes
)

func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Normal:
		return "normal"
	case Low:
		return "low"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// ParsePriority maps the wire spelling to a lane; empty means Normal.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "high":
		return High, nil
	case "", "normal":
		return Normal, nil
	case "low":
		return Low, nil
	default:
		return 0, fmt.Errorf("serve: unknown priority %q", s)
	}
}

// Request is one client inference call.
type Request struct {
	// Tenant identifies the client for fairness and queue accounting; empty
	// maps to "default".
	Tenant string
	// Priority selects the scheduling lane (default Normal).
	Priority Priority
	// Inputs are the model inputs. All tensors must share leading dimension
	// r ≥ 1, the request's item count.
	Inputs map[string]*tensor.Tensor
}

// Response is the per-request outcome delivered to the caller.
type Response struct {
	// ID is the serve-assigned request identifier.
	ID uint64
	// BatchID is the engine batch that carried the request.
	BatchID uint64
	// BatchFill is how many requests shared that engine batch.
	BatchFill int
	// Tensors are this request's rows of the graph outputs.
	Tensors map[string]*tensor.Tensor
	// Err is the failure, if any.
	Err error
	// Latency is admission-to-delivery time.
	Latency time.Duration
}

// TenantConfig tunes one tenant's scheduling.
type TenantConfig struct {
	// Weight is the tenant's WRR share (default 1).
	Weight int
	// QueueCap overrides Config.TenantQueue for this tenant.
	QueueCap int
	// SLO is the tenant's declared p99 latency target; zero means no SLO.
	// The serve layer only records it — enforcement (weight boosts, shed
	// posture) is the adaptive controller's job (internal/control).
	SLO time.Duration
}

// Config assembles a Server.
type Config struct {
	// MaxBatch is the most requests coalesced into one engine batch
	// (default 8).
	MaxBatch int
	// MaxItems bounds a single request's item count (the shared leading
	// dimension of its inputs); larger requests are rejected at admission
	// with ErrBadRequest so an adversarial leading dimension can never
	// reach batch assembly or the engine (default 64).
	MaxItems int
	// MaxDelay is the batching window: a partially filled batch flushes
	// this long after its first request (default 2ms).
	MaxDelay time.Duration
	// TenantQueue bounds each tenant's pending requests (default 64).
	TenantQueue int
	// GlobalQueue bounds total pending requests across tenants
	// (default 1024).
	GlobalQueue int
	// Tenants pre-declares per-tenant weights and caps; unknown tenants get
	// weight 1 and TenantQueue.
	Tenants map[string]TenantConfig
	// ItemShapes, when set, declares the model's input interface (graph
	// input name -> declared shape, leading dimension being the batch
	// axis): requests with missing/extra inputs or mismatched per-item
	// dimensions are rejected at admission with ErrBadRequest instead of
	// reaching the engine, where a malformed batch would fail — and, under
	// the Halt response, take the pipeline down for every tenant.
	ItemShapes map[string][]int
	// MaxTenants caps how many undeclared tenants may hold resident state:
	// above the cap, admitting a request from a brand-new tenant name first
	// evicts the least-recently-active idle undeclared tenant. Declared
	// Config.Tenants are permanent and never counted against the cap
	// (default 256).
	MaxTenants int
	// RetryAfterHint is the base backoff suggested to rejected callers; the
	// hint scales with queue depth (default 25ms).
	RetryAfterHint time.Duration
	// DisableBinary turns off the application/x-mvtee-tensor content type
	// on the HTTP front door; JSON stays available (compatibility gate for
	// staged rollouts).
	DisableBinary bool
	// ShedDisabled turns off ladder-driven load shedding.
	ShedDisabled bool
	// ShedInterval is how often the ladder is polled for shedding
	// decisions (default 10ms).
	ShedInterval time.Duration
	// Metrics receives the server's telemetry series; nil uses
	// telemetry.Default.
	Metrics *telemetry.Registry
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxItems <= 0 {
		c.MaxItems = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = 64
	}
	if c.GlobalQueue <= 0 {
		c.GlobalQueue = 1024
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 256
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = 25 * time.Millisecond
	}
	if c.ShedInterval <= 0 {
		c.ShedInterval = 10 * time.Millisecond
	}
}

// Admission errors.
var (
	// ErrDraining rejects new work while the server drains.
	ErrDraining = errors.New("serve: draining, not accepting new requests")
	// ErrClosed rejects work after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrBadRequest flags a structurally invalid request.
	ErrBadRequest = errors.New("serve: bad request")
)

// OverloadError is an admission rejection with an explicit backpressure
// signal: the caller should retry after RetryAfter rather than queue-spin.
type OverloadError struct {
	// Scope is "tenant", "global" or "shed".
	Scope string
	// Tenant is the rejected tenant.
	Tenant string
	// RetryAfter is the suggested backoff.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: %s overloaded (tenant %q), retry after %v",
		e.Scope, e.Tenant, e.RetryAfter)
}

// pendingReq is one admitted request waiting to be batched or in flight.
type pendingReq struct {
	id       uint64
	tenant   *tenantState
	lane     Priority
	sig      string
	rows     int
	inputs   map[string]*tensor.Tensor
	admitted time.Time
	respCh   chan Response
}

// Server multiplexes client requests onto one engine.
type Server struct {
	cfg    Config
	engine Engine
	met    *serveMetrics

	// dynBatch and dynDelayNs are the effective batching window, initialized
	// from Config and re-tuned live by the adaptive controller
	// (internal/control). With no controller attached they never move, so
	// static deployments behave exactly as configured.
	dynBatch   atomic.Int64
	dynDelayNs atomic.Int64
	// shedFloor is a controller-imposed minimum shed level; admission refuses
	// at max(ladder-derived level, floor), so the controller can only ever
	// shed MORE than the ladder demands, never admit past it.
	shedFloor atomic.Int32

	mu         sync.Mutex
	cond       *sync.Cond
	tenants    map[string]*tenantState
	ring       []*tenantState // WRR visit order, insertion-ordered
	cursor     int
	queued     int
	undeclared int // resident tenantStates not pre-declared in cfg.Tenants
	// flushing marks a batch being assembled/submitted whose requests left
	// the queues but are not yet in the pending map; Drain must wait it out.
	flushing bool
	draining bool
	closed   bool

	pmu     sync.Mutex
	pending map[uint64][]*pendingReq // engine batch ID -> members

	shed    atomic.Int32 // ShedLevel
	reqIDs  atomic.Uint64
	stopped chan struct{} // closed when scheduler+demux exit
	stopSig chan struct{} // closed by Close
	wg      sync.WaitGroup
}

// tenantState is one tenant's queues and WRR bookkeeping.
type tenantState struct {
	name     string
	weight   int
	cap      int
	credit   int
	declared bool // pre-declared in Config.Tenants: never evicted
	lanes    [numLanes][]*pendingReq
	depth    int
	// lastActive is the last admission touching this tenant, the eviction
	// ordering key for idle undeclared tenants.
	lastActive time.Time
	met        *tenantMetrics
}

// New builds a server over engine. The engine must already be started; the
// server takes over its Outputs stream (do not mix with Engine.Infer).
func New(engine Engine, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		engine:  engine,
		met:     newServeMetrics(cfg.Metrics),
		tenants: make(map[string]*tenantState),
		pending: make(map[uint64][]*pendingReq),
		stopped: make(chan struct{}),
		stopSig: make(chan struct{}),
	}
	s.dynBatch.Store(int64(cfg.MaxBatch))
	s.dynDelayNs.Store(int64(cfg.MaxDelay))
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(2)
	go func() { defer s.wg.Done(); s.scheduler() }()
	go func() { defer s.wg.Done(); s.demux() }()
	if !cfg.ShedDisabled {
		s.wg.Add(1)
		go func() { defer s.wg.Done(); s.shedWatcher() }()
	}
	go func() { s.wg.Wait(); close(s.stopped) }()
	return s
}

// tenant returns (creating if needed) the tenant's state. Caller holds mu.
//
// Undeclared tenant names are attacker-controlled (the X-MVTEE-Tenant
// header), so their resident state must be bounded: above Config.MaxTenants,
// creating a new undeclared tenant first evicts the least-recently-active
// idle one. Tenants with queued work are never evicted — their count is
// already bounded by GlobalQueue — and declared tenants are permanent.
func (s *Server) tenant(name string) *tenantState {
	if name == "" {
		name = "default"
	}
	t, ok := s.tenants[name]
	if ok {
		t.lastActive = time.Now()
		return t
	}
	tc, declared := s.cfg.Tenants[name]
	if tc.Weight <= 0 {
		tc.Weight = 1
	}
	if tc.QueueCap <= 0 {
		tc.QueueCap = s.cfg.TenantQueue
	}
	if !declared {
		if s.undeclared >= s.cfg.MaxTenants {
			s.evictIdleTenant()
		}
		s.undeclared++
	}
	t = &tenantState{name: name, weight: tc.Weight, cap: tc.QueueCap,
		credit: tc.Weight, declared: declared, lastActive: time.Now(),
		met: s.met.tenant(name, declared)}
	s.tenants[name] = t
	s.ring = append(s.ring, t)
	return t
}

// evictIdleTenant drops the least-recently-active undeclared tenant with no
// queued work, freeing its map entry and WRR ring slot. Caller holds mu.
func (s *Server) evictIdleTenant() {
	var victim *tenantState
	for _, t := range s.tenants {
		if t.declared || t.depth > 0 {
			continue
		}
		if victim == nil || t.lastActive.Before(victim.lastActive) {
			victim = t
		}
	}
	if victim == nil {
		return // every undeclared tenant has queued work (bounded by GlobalQueue)
	}
	delete(s.tenants, victim.name)
	s.undeclared--
	for i, t := range s.ring {
		if t != victim {
			continue
		}
		s.ring = append(s.ring[:i], s.ring[i+1:]...)
		if i < s.cursor {
			s.cursor--
		}
		if len(s.ring) > 0 {
			s.cursor %= len(s.ring)
		} else {
			s.cursor = 0
		}
		break
	}
}

// signature keys batch compatibility: sorted input names with per-item
// shapes (every dimension after the leading item count). It also validates
// the request, returning the shared item count.
func signature(inputs map[string]*tensor.Tensor) (string, int, error) {
	if len(inputs) == 0 {
		return "", 0, fmt.Errorf("%w: no inputs", ErrBadRequest)
	}
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := -1
	var b strings.Builder
	for _, n := range names {
		t := inputs[n]
		if t == nil || t.Dims() == 0 || t.Dim(0) == 0 {
			return "", 0, fmt.Errorf("%w: input %q empty or missing leading item dimension", ErrBadRequest, n)
		}
		if rows == -1 {
			rows = t.Dim(0)
		} else if t.Dim(0) != rows {
			return "", 0, fmt.Errorf("%w: input %q item count %d != %d", ErrBadRequest, n, t.Dim(0), rows)
		}
		b.WriteString(n)
		for _, d := range t.Shape()[1:] {
			b.WriteByte('x')
			b.WriteString(strconv.Itoa(d))
		}
		b.WriteByte(';')
	}
	return b.String(), rows, nil
}

// checkShapes validates a request against the model's declared input
// interface: exact input names, matching rank, matching dimensions past the
// leading batch axis.
func checkShapes(declared map[string][]int, inputs map[string]*tensor.Tensor) error {
	for name := range inputs {
		if _, ok := declared[name]; !ok {
			return fmt.Errorf("%w: unknown input %q", ErrBadRequest, name)
		}
	}
	for name, want := range declared {
		t, ok := inputs[name]
		if !ok {
			return fmt.Errorf("%w: missing input %q", ErrBadRequest, name)
		}
		got := t.Shape()
		if len(got) != len(want) {
			return fmt.Errorf("%w: input %q rank %d, model declares %v", ErrBadRequest, name, len(got), want)
		}
		for i := 1; i < len(want); i++ {
			if got[i] != want[i] {
				return fmt.Errorf("%w: input %q shape %v, model declares %v (batch axis excluded)",
					ErrBadRequest, name, got, want)
			}
		}
	}
	return nil
}

// Submit admits one request, returning a channel that will deliver exactly
// one Response. Admission is synchronous: an error return means the request
// was never queued. Overload rejections are *OverloadError with a
// retry-after hint.
func (s *Server) Submit(req Request) (<-chan Response, error) {
	sig, rows, err := signature(req.Inputs)
	if err != nil {
		return nil, err
	}
	if rows > s.cfg.MaxItems {
		return nil, fmt.Errorf("%w: item count %d exceeds max %d", ErrBadRequest, rows, s.cfg.MaxItems)
	}
	if req.Priority < High || req.Priority >= numLanes {
		return nil, fmt.Errorf("%w: priority %d", ErrBadRequest, req.Priority)
	}
	if s.cfg.ItemShapes != nil {
		if err := checkShapes(s.cfg.ItemShapes, req.Inputs); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.draining {
		s.mu.Unlock()
		s.met.admission(admitDraining)
		return nil, ErrDraining
	}
	t := s.tenant(req.Tenant)
	if lvl := s.effectiveShed(); lvl.sheds(req.Priority) {
		s.mu.Unlock()
		s.met.admission(admitShed)
		return nil, &OverloadError{Scope: "shed", Tenant: t.name, RetryAfter: s.shedRetryAfter(lvl)}
	}
	if s.queued >= s.cfg.GlobalQueue {
		depth := s.queued
		s.mu.Unlock()
		s.met.admission(admitRejectGlobal)
		return nil, &OverloadError{Scope: "global", Tenant: t.name, RetryAfter: s.retryAfter(depth)}
	}
	if t.depth >= t.cap {
		depth := t.depth
		s.mu.Unlock()
		s.met.admission(admitRejectTenant)
		t.met.rejected.Inc()
		return nil, &OverloadError{Scope: "tenant", Tenant: t.name, RetryAfter: s.retryAfter(depth)}
	}
	p := &pendingReq{
		id:       s.reqIDs.Add(1),
		tenant:   t,
		lane:     req.Priority,
		sig:      sig,
		rows:     rows,
		inputs:   req.Inputs,
		admitted: time.Now(),
		respCh:   make(chan Response, 1),
	}
	t.lanes[req.Priority] = append(t.lanes[req.Priority], p)
	t.depth++
	s.queued++
	t.met.requests.Inc()
	t.met.depth.Set(int64(t.depth))
	s.met.globalDepth.Set(int64(s.queued))
	s.cond.Broadcast()
	s.mu.Unlock()
	s.met.admission(admitAdmitted)
	return p.respCh, nil
}

// Infer is Submit plus waiting for the response (or ctx cancellation; a
// cancelled request still completes engine-side, its response is dropped).
func (s *Server) Infer(ctx context.Context, req Request) (Response, error) {
	ch, err := s.Submit(req)
	if err != nil {
		return Response{}, err
	}
	select {
	case r := <-ch:
		return r, r.Err
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// retryAfter scales the base hint by how many batch windows of work are
// already queued — deeper queues suggest longer backoff.
func (s *Server) retryAfter(depth int) time.Duration {
	maxBatch := int(s.dynBatch.Load())
	if maxBatch <= 0 {
		maxBatch = 1
	}
	windows := depth/maxBatch + 1
	return time.Duration(windows) * s.cfg.RetryAfterHint
}

// shedRetryAfter scales the backoff hint with the shedding severity: queue
// depth says nothing about when a degraded engine recovers, so the hint
// quadruples per shed level (4x at ShedLow, 16x at ShedToHigh, 64x — 1.6s at
// the default hint — when the engine is halted): clients rejected because
// the ladder collapsed back off for seconds, not a single batch window.
func (s *Server) shedRetryAfter(lvl ShedLevel) time.Duration {
	if lvl < ShedNone {
		lvl = ShedNone
	}
	if lvl > ShedAll {
		lvl = ShedAll
	}
	return s.cfg.RetryAfterHint << (2 * uint(lvl))
}

// QueueDepths snapshots per-tenant queue depths (for /healthz).
func (s *Server) QueueDepths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.tenants))
	for n, t := range s.tenants {
		out[n] = t.depth
	}
	return out
}

// Shed returns the effective load-shedding level admission applies: the
// harsher of the ladder-derived level and the controller's floor.
func (s *Server) Shed() ShedLevel { return s.effectiveShed() }

func (s *Server) effectiveShed() ShedLevel {
	lvl := ShedLevel(s.shed.Load())
	if f := ShedLevel(s.shedFloor.Load()); f > lvl {
		lvl = f
	}
	return lvl
}

// --- adaptive-controller actuators ----------------------------------------------
//
// These are the knobs internal/control steers every epoch. All of them are
// safe for concurrent use with admission and the scheduler; none of them is
// required — a server with no controller attached keeps its static Config
// behavior bit for bit.

// BatchWindow returns the effective batching window (max batch size, max
// delay) the scheduler currently applies.
func (s *Server) BatchWindow() (int, time.Duration) {
	return int(s.dynBatch.Load()), time.Duration(s.dynDelayNs.Load())
}

// SetBatchWindow retunes the batching window. Values are clamped to sane
// floors (batch >= 1, delay >= 0); the next batch assembly picks them up.
func (s *Server) SetBatchWindow(maxBatch int, maxDelay time.Duration) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxDelay < 0 {
		maxDelay = 0
	}
	s.dynBatch.Store(int64(maxBatch))
	s.dynDelayNs.Store(int64(maxDelay))
}

// TenantWeight reports a tenant's current WRR weight (0 if the tenant has no
// resident state yet).
func (s *Server) TenantWeight(name string) int {
	if name == "" {
		name = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t.weight
	}
	return 0
}

// SetTenantWeight adjusts a tenant's WRR share (creating the tenant's state
// if needed); weight is clamped to >= 1. Credits already spent this refill
// round are untouched — the new weight applies from the next refill.
func (s *Server) SetTenantWeight(name string, weight int) {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.tenant(name).weight = weight
}

// SetShedFloor imposes a minimum shedding posture: admission refuses at
// max(ladder-derived level, floor). The floor can only ever ADD shedding on
// top of what the ladder demands — a controller bug can never re-admit lanes
// the degradation ladder shed.
func (s *Server) SetShedFloor(lvl ShedLevel) {
	if lvl < ShedNone {
		lvl = ShedNone
	}
	if lvl > ShedAll {
		lvl = ShedAll
	}
	s.shedFloor.Store(int32(lvl))
}

// ShedFloor returns the controller-imposed minimum shedding posture.
func (s *Server) ShedFloor() ShedLevel { return ShedLevel(s.shedFloor.Load()) }

// TenantSLOs lists the declared per-tenant p99 latency targets (the
// controller's SLO-enforcement inputs).
func (s *Server) TenantSLOs() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for name, tc := range s.cfg.Tenants {
		if tc.SLO > 0 {
			out[name] = tc.SLO
		}
	}
	return out
}

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admitting new requests, flushes the queues as final batches
// (ignoring the delay window), and waits for every in-flight batch to
// deliver — the graceful-shutdown half of Close. It returns ctx.Err() if
// the context expires first; already-admitted requests still complete.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		empty := s.queued == 0 && !s.flushing
		s.mu.Unlock()
		if empty {
			s.pmu.Lock()
			inflight := len(s.pending)
			s.pmu.Unlock()
			if inflight == 0 {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close tears the server down. Queued and in-flight requests receive
// ErrClosed; call Drain first for a graceful stop. The engine is left
// running (its owner stops it).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.stopped
		return
	}
	s.closed = true
	close(s.stopSig)
	// Fail everything still queued.
	for _, t := range s.tenants {
		for lane := range t.lanes {
			for _, p := range t.lanes[lane] {
				p.respCh <- Response{ID: p.id, Err: ErrClosed}
			}
			t.lanes[lane] = nil
		}
		t.depth = 0
	}
	s.queued = 0
	s.cond.Broadcast()
	s.mu.Unlock()

	// Fail everything in flight — twice: once now, and once after the
	// workers exit, because a batch mid-submit at close time registers
	// itself in pending only after the first sweep.
	failPending := func() {
		s.pmu.Lock()
		for id, members := range s.pending {
			for _, p := range members {
				select {
				case p.respCh <- Response{ID: p.id, BatchID: id, Err: ErrClosed}:
				default:
				}
			}
			delete(s.pending, id)
		}
		s.pmu.Unlock()
	}
	failPending()
	<-s.stopped
	failPending()
}

// --- scheduler -----------------------------------------------------------------

// pick dequeues the next request under WRR with priority lanes: the highest
// non-empty lane wins; within a lane, tenants are visited round-robin and
// spend weight-refilled credits. sig, when non-empty, restricts the pick to
// compatible requests (same signature at a tenant's lane head; FIFO order
// within a tenant is never reordered). Caller holds mu.
func (s *Server) pick(sig string) *pendingReq {
	if s.queued == 0 {
		return nil
	}
	for lane := High; lane < numLanes; lane++ {
		// Two passes: first spend credits, then refill once and retry, so a
		// burst from one heavy tenant cannot starve the ring.
		for pass := 0; pass < 2; pass++ {
			n := len(s.ring)
			for i := 0; i < n; i++ {
				t := s.ring[(s.cursor+i)%n]
				q := t.lanes[lane]
				if len(q) == 0 || t.credit <= 0 {
					continue
				}
				p := q[0]
				if sig != "" && p.sig != sig {
					continue
				}
				t.lanes[lane] = q[1:]
				t.depth--
				t.credit--
				s.queued--
				s.cursor = (s.cursor + i) % n // resume fairness scan here
				if t.credit <= 0 {
					s.cursor = (s.cursor + 1) % n
				}
				t.met.depth.Set(int64(t.depth))
				s.met.globalDepth.Set(int64(s.queued))
				return p
			}
			if pass == 0 {
				refill := false
				for _, t := range s.ring {
					if t.credit <= 0 {
						t.credit = t.weight
						refill = true
					}
				}
				if !refill {
					break // credits weren't the blocker; lane has no match
				}
			}
		}
	}
	return nil
}

// scheduler assembles batches: it opens a batch with the WRR-chosen head,
// then pulls compatible requests until MaxBatch or the MaxDelay window
// closes (drain mode flushes immediately). Engine backpressure is absorbed
// here — Submit blocks while the pipeline is at depth, and admission keeps
// rejecting above the bounded queues.
func (s *Server) scheduler() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for s.queued == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		first := s.pick("")
		if first == nil {
			continue
		}
		// From here the batch members have left the queues (queued already
		// decremented) but are not yet in pending; flushing keeps Drain from
		// declaring the server empty while cond.Wait releases mu below.
		s.flushing = true
		// The effective window is read once per batch: a controller retune
		// mid-assembly applies from the next batch.
		maxBatch, maxDelay := s.BatchWindow()
		batch := append(make([]*pendingReq, 0, maxBatch), first)
		reason := flushSize
		if s.draining {
			for len(batch) < maxBatch {
				p := s.pick(first.sig)
				if p == nil {
					break
				}
				batch = append(batch, p)
			}
			if len(batch) < maxBatch {
				reason = flushDrain
			}
		} else {
			deadline := time.Now().Add(maxDelay)
			// The broadcast must hold mu: the scheduler checks the deadline
			// and enters cond.Wait under mu, so a lock-free broadcast firing
			// in that gap would find no waiter and be lost, stalling the
			// partial batch until unrelated traffic next broadcasts.
			timer := time.AfterFunc(maxDelay, func() {
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			})
			for len(batch) < maxBatch {
				if p := s.pick(first.sig); p != nil {
					batch = append(batch, p)
					continue
				}
				if s.closed || s.draining {
					reason = flushDrain
					break
				}
				if !time.Now().Before(deadline) {
					reason = flushTimer
					break
				}
				s.cond.Wait()
			}
			timer.Stop()
		}
		if s.closed {
			s.flushing = false
			for _, p := range batch {
				p.respCh <- Response{ID: p.id, Err: ErrClosed}
			}
			return
		}
		s.mu.Unlock()
		s.submitBatch(batch, reason)
		s.mu.Lock()
		s.flushing = false
	}
}

// submitBatch concatenates the batch's inputs, submits to the engine, and
// registers the members for demux. Called without mu.
func (s *Server) submitBatch(batch []*pendingReq, reason flushReason) {
	inputs := concatInputs(batch)
	id, err := s.engine.Submit(inputs)
	if err != nil {
		for _, p := range batch {
			p.respCh <- Response{ID: p.id, Err: err, Latency: time.Since(p.admitted)}
		}
		return
	}
	s.pmu.Lock()
	s.pending[id] = batch
	inflight := len(s.pending)
	s.pmu.Unlock()
	s.met.flush(reason, len(batch), inflight)
}

// --- demux ---------------------------------------------------------------------

// demux routes engine results back to batch members, splitting output rows
// per request. Results for batches the server did not submit (engine IDs
// are process-unique) are ignored.
func (s *Server) demux() {
	for {
		select {
		case <-s.stopSig:
			return
		case r, ok := <-s.engine.Outputs():
			if !ok {
				return
			}
			s.pmu.Lock()
			members := s.pending[r.ID]
			delete(s.pending, r.ID)
			s.met.inflight.Set(int64(len(s.pending)))
			s.pmu.Unlock()
			if members == nil {
				continue
			}
			s.deliver(r, members)
		}
	}
}

// deliver fans one engine result out to the batch's members.
func (s *Server) deliver(r monitor.BatchResult, members []*pendingReq) {
	now := time.Now()
	fill := len(members)
	if r.Err != nil {
		for _, p := range members {
			s.respond(p, Response{ID: p.id, BatchID: r.ID, BatchFill: fill, Err: r.Err}, now)
		}
		return
	}
	if fill == 1 {
		// Sole member: hand the engine tensors over without copying.
		p := members[0]
		s.respond(p, Response{ID: p.id, BatchID: r.ID, BatchFill: 1, Tensors: r.Tensors}, now)
		return
	}
	split, err := splitOutputs(r.Tensors, members)
	for i, p := range members {
		resp := Response{ID: p.id, BatchID: r.ID, BatchFill: fill}
		if err != nil {
			resp.Err = err
		} else {
			resp.Tensors = split[i]
		}
		s.respond(p, resp, now)
	}
}

func (s *Server) respond(p *pendingReq, resp Response, now time.Time) {
	resp.Latency = now.Sub(p.admitted)
	p.tenant.met.latencyNs.Observe(resp.Latency.Nanoseconds())
	select {
	case p.respCh <- resp:
	default: // Close already failed this request; never block demux
	}
}

// --- batching ------------------------------------------------------------------

// concatInputs stacks the members' input tensors along the leading item
// axis, in member order. A single-member batch reuses its tensors directly.
func concatInputs(batch []*pendingReq) map[string]*tensor.Tensor {
	if len(batch) == 1 {
		return batch[0].inputs
	}
	out := make(map[string]*tensor.Tensor, len(batch[0].inputs))
	for name, first := range batch[0].inputs {
		rows := 0
		for _, p := range batch {
			rows += p.inputs[name].Dim(0)
		}
		shape := first.Shape()
		shape[0] = rows
		t := tensor.New(shape...)
		dst := t.Data()
		off := 0
		for _, p := range batch {
			src := p.inputs[name].Data()
			copy(dst[off:], src)
			off += len(src)
		}
		out[name] = t
	}
	return out
}

// splitOutputs slices each graph output back into per-member tensors by
// rows. Row data is copied so no two callers alias one backing array.
func splitOutputs(outs map[string]*tensor.Tensor, members []*pendingReq) ([]map[string]*tensor.Tensor, error) {
	total := 0
	for _, p := range members {
		total += p.rows
	}
	res := make([]map[string]*tensor.Tensor, len(members))
	for i := range res {
		res[i] = make(map[string]*tensor.Tensor, len(outs))
	}
	for name, t := range outs {
		if t.Dims() == 0 || t.Dim(0) != total {
			return nil, fmt.Errorf("serve: output %q leading dimension %v does not match batch items %d (model not batchable?)",
				name, t.Shape(), total)
		}
		stride := t.Size() / total
		shape := t.Shape()
		data := t.Data()
		off := 0
		for i, p := range members {
			shape[0] = p.rows
			part := tensor.New(shape...)
			copy(part.Data(), data[off:off+p.rows*stride])
			res[i][name] = part
			off += p.rows * stride
		}
	}
	return res, nil
}
