package serve

import (
	"fmt"
	"time"

	"repro/internal/monitor"
)

// ShedLevel is the front door's load-shedding posture, derived from the
// engine's degradation ladder (PR 2): the server starts refusing
// lower-priority lanes while the engine still has headroom, so shedding
// happens at admission — before queue pressure forces the engine itself to
// demote a stage.
type ShedLevel int

// Shed levels, mildest to harshest.
const (
	// ShedNone admits every lane (every stage at LadderFull).
	ShedNone ShedLevel = iota
	// ShedLow refuses the Low lane (weakest stage at LadderQuorum).
	ShedLow
	// ShedToHigh refuses Low and Normal (weakest stage at LadderSingle).
	ShedToHigh
	// ShedAll refuses everything (a stage is LadderHalted).
	ShedAll
)

func (l ShedLevel) String() string {
	switch l {
	case ShedNone:
		return "none"
	case ShedLow:
		return "shed-low"
	case ShedToHigh:
		return "shed-to-high"
	case ShedAll:
		return "shed-all"
	default:
		return fmt.Sprintf("ShedLevel(%d)", int(l))
	}
}

// sheds reports whether a request on lane p is refused at this level.
func (l ShedLevel) sheds(p Priority) bool {
	switch l {
	case ShedNone:
		return false
	case ShedLow:
		return p >= Low
	case ShedToHigh:
		return p >= Normal
	default:
		return true
	}
}

// shedLevelFor maps the weakest stage's rung to a shedding posture.
func shedLevelFor(ladder []monitor.LadderRung) ShedLevel {
	worst := monitor.LadderFull
	for _, r := range ladder {
		if r < worst {
			worst = r
		}
	}
	switch worst {
	case monitor.LadderFull:
		return ShedNone
	case monitor.LadderQuorum:
		return ShedLow
	case monitor.LadderSingle:
		return ShedToHigh
	default:
		return ShedAll
	}
}

// shedWatcher polls the ladder and publishes the level admission reads.
func (s *Server) shedWatcher() {
	tick := time.NewTicker(s.cfg.ShedInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopSig:
			return
		case <-tick.C:
			lvl := shedLevelFor(s.engine.Ladder())
			if s.shed.Swap(int32(lvl)) != int32(lvl) {
				s.met.shedLevel.Set(int64(lvl))
			}
		}
	}
}
