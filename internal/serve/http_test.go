package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func postInfer(t *testing.T, url string, body InferRequest) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPInfer(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp := postInfer(t, ts.URL, InferRequest{
		Tenant:   "acme",
		Priority: "high",
		Inputs:   map[string]WireTensor{"x": {Shape: []int{1, 3}, Data: []float32{1, 2, 3}}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var out InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	y := out.Outputs["y"]
	if len(y.Data) != 3 || y.Data[0] != 2 || y.Data[2] != 6 {
		t.Fatalf("y = %+v, want doubled inputs", y)
	}
	if out.ID == 0 || out.BatchID == 0 {
		t.Fatalf("missing ids: %+v", out)
	}
}

func TestHTTPOverloadHas429AndRetryAfter(t *testing.T) {
	fe := newFakeEngine()
	fe.block = make(chan struct{})
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond, TenantQueue: 1})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	// Deferred after ts.Close so it runs first: ts.Close waits for in-flight
	// handlers, which sit in Infer until the engine unblocks.
	defer close(fe.block)

	// Saturate in two deterministic steps (the engine accepts nothing, so
	// admitted requests block server-side until the deferred unblock): the
	// first admitted request is picked into batch assembly and wedges the
	// scheduler in engine.Submit; only then does the second one fill the
	// tenant queue (cap 1). Firing both at once would race — the second
	// could hit the still-full queue and consume the 429 itself.
	bgPost := func() {
		resp := postInfer(t, ts.URL, InferRequest{Tenant: "t",
			Inputs: map[string]WireTensor{"x": {Shape: []int{1, 1}, Data: []float32{1}}}})
		resp.Body.Close()
	}
	go bgPost()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.flushing
	})
	go bgPost()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued >= 1
	})

	resp := postInfer(t, ts.URL, InferRequest{Tenant: "t",
		Inputs: map[string]WireTensor{"x": {Shape: []int{1, 1}, Data: []float32{1}}}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 against saturated tenant queue", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RetryAfter <= 0 {
		t.Fatalf("error body retry_after_s = %v, want > 0", eb.RetryAfter)
	}
}

func TestHTTPBadRequest(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp := postInfer(t, ts.URL, InferRequest{Priority: "urgent",
		Inputs: map[string]WireTensor{"x": {Shape: []int{1}, Data: []float32{1}}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown priority: status %d, want 400", resp.StatusCode)
	}

	resp = postInfer(t, ts.URL, InferRequest{
		Inputs: map[string]WireTensor{"x": {Shape: []int{2, 2}, Data: []float32{1}}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shape/data mismatch: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPOverflowShapeRejected(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// 2^54 * 3 * 32 * 32 wraps to 0 mod 2^64: before overflow-checked
	// volumes this shape with an empty data slice passed validation and the
	// 2^54-row request crashed batch assembly. It must die with a 400.
	resp := postInfer(t, ts.URL, InferRequest{Inputs: map[string]WireTensor{
		"x": {Shape: []int{1 << 54, 3, 32, 32}, Data: []float32{}},
	}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPBodyTooLarge(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond,
		ItemShapes: map[string][]int{"x": {1, 4}}})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// The declared interface admits at most 4 floats per request, so the
	// body cap is ~1 MiB; a 3 MiB body must be cut off with a 413 before it
	// is buffered.
	body := bytes.Repeat([]byte("9"), 3<<20)
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestErrStatusClientCancel(t *testing.T) {
	// A client abort surfaces as ctx.Err() out of Infer; it must not be
	// classified as an internal server error.
	for _, err := range []error{context.Canceled, context.DeadlineExceeded} {
		if st, _ := errStatus(err); st != http.StatusRequestTimeout {
			t.Errorf("errStatus(%v) = %d, want %d", err, st, http.StatusRequestTimeout)
		}
	}
}

func TestHTTPHealthz(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{Metrics: telemetry.NewRegistry()})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "serving" || h.Shed != "none" || len(h.Ladder) != 1 || h.Ladder[0] != "full" {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestHTTPOverloadWait(t *testing.T) {
	// An admitted HTTP request whose connection dies must not wedge the
	// server: context cancellation abandons the wait, the response channel
	// (buffered) absorbs the eventual delivery.
	fe := newFakeEngine()
	fe.block = make(chan struct{})
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	client := &http.Client{Timeout: 50 * time.Millisecond}
	buf, _ := json.Marshal(InferRequest{Tenant: "t",
		Inputs: map[string]WireTensor{"x": {Shape: []int{1, 1}, Data: []float32{1}}}})
	if _, err := client.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(buf)); err == nil {
		t.Fatal("expected client timeout against blocked engine")
	}
	close(fe.block) // engine recovers; server must still be operational
	resp := postInfer(t, ts.URL, InferRequest{Tenant: "t",
		Inputs: map[string]WireTensor{"x": {Shape: []int{1, 1}, Data: []float32{2}}}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d, want 200", resp.StatusCode)
	}
}
