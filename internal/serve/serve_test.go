package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// fakeEngine is a scripted Engine for front-end unit tests: it records every
// submitted batch, optionally blocks submissions, and answers with behave
// (default: "y" = 2*"x", preserving shape — a batchable model).
type fakeEngine struct {
	outs   chan monitor.BatchResult
	block  chan struct{} // non-nil: Submit waits for a receive-ready channel
	behave func(id uint64, in map[string]*tensor.Tensor) monitor.BatchResult

	mu        sync.Mutex
	ids       uint64
	submitted []map[string]*tensor.Tensor
	ladder    []monitor.LadderRung
}

func newFakeEngine() *fakeEngine {
	return &fakeEngine{
		outs:   make(chan monitor.BatchResult, 64),
		ladder: []monitor.LadderRung{monitor.LadderFull},
	}
}

func (f *fakeEngine) Submit(inputs map[string]*tensor.Tensor) (uint64, error) {
	if f.block != nil {
		<-f.block
	}
	f.mu.Lock()
	f.ids++
	id := f.ids
	f.submitted = append(f.submitted, inputs)
	behave := f.behave
	f.mu.Unlock()
	if behave == nil {
		behave = func(id uint64, in map[string]*tensor.Tensor) monitor.BatchResult {
			y := in["x"].Clone()
			y.Scale(2)
			return monitor.BatchResult{ID: id, Tensors: map[string]*tensor.Tensor{"y": y}}
		}
	}
	f.outs <- behave(id, inputs)
	return id, nil
}

func (f *fakeEngine) Outputs() <-chan monitor.BatchResult { return f.outs }

func (f *fakeEngine) Ladder() []monitor.LadderRung {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]monitor.LadderRung(nil), f.ladder...)
}

func (f *fakeEngine) setLadder(rungs ...monitor.LadderRung) {
	f.mu.Lock()
	f.ladder = rungs
	f.mu.Unlock()
}

func (f *fakeEngine) batches() []map[string]*tensor.Tensor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]map[string]*tensor.Tensor(nil), f.submitted...)
}

func newTestServer(t *testing.T, e Engine, cfg Config) *Server {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	s := New(e, cfg)
	t.Cleanup(s.Close)
	return s
}

func itemReq(tenant string, prio Priority, vals ...float32) Request {
	return Request{Tenant: tenant, Priority: prio,
		Inputs: map[string]*tensor.Tensor{"x": tensor.MustFromSlice(vals, 1, len(vals))}}
}

func TestBatchFlushOnSize(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 4, MaxDelay: 10 * time.Second})

	var wg sync.WaitGroup
	resps := make([]Response, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Infer(context.Background(), itemReq("t", Normal, float32(i), float32(i)))
			if err != nil {
				t.Errorf("infer %d: %v", i, err)
				return
			}
			resps[i] = r
		}(i)
	}
	wg.Wait()

	// One engine batch of 4 items (the window never expired), each caller
	// getting back its own doubled row.
	if got := fe.batches(); len(got) != 1 || got[0]["x"].Dim(0) != 4 {
		t.Fatalf("engine saw %d batches (first rows=%v), want 1 batch of 4 rows",
			len(got), got[0]["x"].Shape())
	}
	for i, r := range resps {
		if r.BatchFill != 4 {
			t.Fatalf("resp %d fill = %d, want 4", i, r.BatchFill)
		}
		y := r.Tensors["y"]
		if y.Dim(0) != 1 || y.At(0, 0) != float32(2*i) {
			t.Fatalf("resp %d y = %v (shape %v), want %d", i, y.At(0, 0), y.Shape(), 2*i)
		}
	}
}

func TestBatchFlushOnTimer(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 16, MaxDelay: 100 * time.Millisecond})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Infer(context.Background(), itemReq("t", Normal, float32(i)))
			if err != nil {
				t.Errorf("infer: %v", err)
				return
			}
			if r.BatchFill != 3 {
				t.Errorf("fill = %d, want 3 (timer flush)", r.BatchFill)
			}
		}(i)
	}
	wg.Wait()
	if got := fe.batches(); len(got) != 1 || got[0]["x"].Dim(0) != 3 {
		t.Fatalf("engine saw %v batches, want 1 of 3 rows", len(got))
	}
}

func TestIncompatibleShapesSplitBatches(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 8, MaxDelay: 20 * time.Millisecond})

	var wg sync.WaitGroup
	shapes := [][]float32{{1, 2}, {3, 4, 5}} // item widths 2 and 3: incompatible
	for _, vals := range shapes {
		vals := vals
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Infer(context.Background(), itemReq("t", Normal, vals...)); err != nil {
				t.Errorf("infer: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := fe.batches(); len(got) != 2 {
		t.Fatalf("engine saw %d batches, want 2 (incompatible signatures)", len(got))
	}
}

func TestMultiRowDemux(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 2, MaxDelay: time.Second})

	var wg sync.WaitGroup
	var r2, r1 Response
	wg.Add(2)
	go func() {
		defer wg.Done()
		r, err := s.Infer(context.Background(), Request{Tenant: "a", Priority: Normal,
			Inputs: map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)}})
		if err != nil {
			t.Errorf("2-row infer: %v", err)
		}
		r2 = r
	}()
	go func() {
		defer wg.Done()
		r, err := s.Infer(context.Background(), Request{Tenant: "b", Priority: Normal,
			Inputs: map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{5, 6}, 1, 2)}})
		if err != nil {
			t.Errorf("1-row infer: %v", err)
		}
		r1 = r
	}()
	wg.Wait()

	if y := r2.Tensors["y"]; y.Dim(0) != 2 || y.Size() != 4 {
		t.Fatalf("2-row caller got shape %v", y.Shape())
	}
	if y := r1.Tensors["y"]; y.Dim(0) != 1 || y.At(0, 0) != 10 || y.At(0, 1) != 12 {
		t.Fatalf("1-row caller got %v %v", y.Shape(), y.Data())
	}
	// Callers must not alias one backing array.
	r2.Tensors["y"].Fill(-1)
	if r1.Tensors["y"].At(0, 0) != 10 {
		t.Fatal("split outputs alias one backing array")
	}
}

func TestTenantQueueOverflowRetryAfter(t *testing.T) {
	fe := newFakeEngine()
	fe.block = make(chan struct{}) // engine accepts nothing: queues fill
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond, TenantQueue: 2})
	defer close(fe.block)

	// First request is pulled into batch assembly; the next two occupy the
	// tenant queue; the fourth must be rejected with a retry-after hint.
	var chans []<-chan Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		ch, err := s.Submit(itemReq("t", Normal, 1))
		if err != nil {
			var ov *OverloadError
			if !errors.As(err, &ov) {
				t.Fatalf("overflow returned %v, want *OverloadError", err)
			}
			if ov.Scope != "tenant" || ov.Tenant != "t" || ov.RetryAfter <= 0 {
				t.Fatalf("bad overload error: %+v", ov)
			}
			break
		}
		chans = append(chans, ch)
		if len(chans) > 3 || time.Now().After(deadline) {
			t.Fatalf("admitted %d requests, want rejection after ~3 (cap 2 + 1 assembling)", len(chans))
		}
	}

	// Other tenants are isolated: their queues are not full.
	if _, err := s.Submit(itemReq("other", Normal, 1)); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

func TestGlobalQueueOverflow(t *testing.T) {
	fe := newFakeEngine()
	fe.block = make(chan struct{})
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond,
		TenantQueue: 100, GlobalQueue: 3})
	defer close(fe.block)

	admitted := 0
	for i := 0; i < 10; i++ {
		_, err := s.Submit(itemReq(fmt.Sprintf("t%d", i), Normal, 1))
		if err == nil {
			admitted++
			continue
		}
		var ov *OverloadError
		if !errors.As(err, &ov) || ov.Scope != "global" {
			t.Fatalf("got %v, want global *OverloadError", err)
		}
		return
	}
	t.Fatalf("admitted %d requests past a global cap of 3", admitted)
}

func TestDrainCompletesInflight(t *testing.T) {
	fe := newFakeEngine()
	release := make(chan struct{})
	fe.block = release
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond})

	var wg sync.WaitGroup
	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Infer(context.Background(), itemReq("t", Normal, float32(i)))
			results <- err
		}(i)
	}
	// Wait until the requests are admitted (queued or assembling).
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued+boolInt(s.flushing) >= 2
	})

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// New work is refused while draining.
	waitFor(t, func() bool { return s.Draining() })
	if _, err := s.Submit(itemReq("t", Normal, 9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}

	// Unblock the engine; the drain must complete every admitted request.
	go func() {
		for i := 0; i < 3; i++ {
			release <- struct{}{}
		}
	}()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("in-flight request failed during drain: %v", err)
		}
	}
}

func TestSubmitRejectsOversizedItemCount(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 4, MaxDelay: time.Millisecond})

	// The default MaxItems (64) refuses an outsized leading dimension at the
	// door instead of letting it reach batch assembly.
	big := Request{Inputs: map[string]*tensor.Tensor{"x": tensor.New(65, 2)}}
	if _, err := s.Submit(big); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized request: %v, want ErrBadRequest", err)
	}

	// MaxItems is configurable, independent of MaxBatch.
	s2 := newTestServer(t, newFakeEngine(), Config{MaxBatch: 2, MaxItems: 8, MaxDelay: time.Millisecond})
	ok := Request{Inputs: map[string]*tensor.Tensor{"x": tensor.MustFromSlice(make([]float32, 16), 8, 2)}}
	if _, err := s2.Infer(context.Background(), ok); err != nil {
		t.Fatalf("8-item request under MaxItems=8: %v", err)
	}
	if _, err := s2.Submit(Request{Inputs: map[string]*tensor.Tensor{"x": tensor.New(9, 2)}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("9-item request under MaxItems=8: %v, want ErrBadRequest", err)
	}
}

func TestDrainWaitsForAssemblingBatch(t *testing.T) {
	fe := newFakeEngine()
	// A long window and MaxBatch > 1 park the scheduler in batch assembly:
	// the lone request has left the queues (queued back to 0) but is not yet
	// in pending, exactly the window where Drain used to declare emptiness.
	s := newTestServer(t, fe, Config{MaxBatch: 4, MaxDelay: 10 * time.Second})

	ch, err := s.Submit(itemReq("t", Normal, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued == 0 && s.flushing
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case r := <-ch:
		if r.Err != nil {
			t.Fatalf("admitted request failed: %v", r.Err)
		}
	default:
		t.Fatal("Drain returned before the admitted request completed")
	}
}

func TestShedFollowsLadder(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond,
		ShedInterval: time.Millisecond})

	if _, err := s.Infer(context.Background(), itemReq("t", Low, 1)); err != nil {
		t.Fatalf("healthy engine shed a Low request: %v", err)
	}

	fe.setLadder(monitor.LadderQuorum) // a variant died somewhere
	waitFor(t, func() bool { return s.Shed() == ShedLow })
	_, err := s.Submit(itemReq("t", Low, 1))
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Scope != "shed" {
		t.Fatalf("Low under quorum: %v, want shed *OverloadError", err)
	}
	if _, err := s.Infer(context.Background(), itemReq("t", Normal, 1)); err != nil {
		t.Fatalf("Normal under quorum rejected: %v", err)
	}

	fe.setLadder(monitor.LadderSingle)
	waitFor(t, func() bool { return s.Shed() == ShedToHigh })
	if _, err := s.Submit(itemReq("t", Normal, 1)); err == nil {
		t.Fatal("Normal admitted at ShedToHigh")
	}
	if _, err := s.Infer(context.Background(), itemReq("t", High, 1)); err != nil {
		t.Fatalf("High under single rejected: %v", err)
	}

	fe.setLadder(monitor.LadderFull) // replacement restored the stage
	waitFor(t, func() bool { return s.Shed() == ShedNone })
	if _, err := s.Infer(context.Background(), itemReq("t", Low, 1)); err != nil {
		t.Fatalf("recovered engine still shedding: %v", err)
	}
}

func TestUnbatchableOutputSurfacesError(t *testing.T) {
	fe := newFakeEngine()
	fe.behave = func(id uint64, in map[string]*tensor.Tensor) monitor.BatchResult {
		// A model that ignores the batch axis: scalar output whatever the
		// input rows — the demux must refuse to split it.
		return monitor.BatchResult{ID: id, Tensors: map[string]*tensor.Tensor{
			"y": tensor.MustFromSlice([]float32{42}, 1, 1)}}
	}
	s := newTestServer(t, fe, Config{MaxBatch: 2, MaxDelay: time.Second})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Infer(context.Background(), itemReq("t", Normal, 7))
			if err == nil || !strings.Contains(err.Error(), "does not match batch items") {
				t.Errorf("unbatchable output: err = %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestBadRequests(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{})
	cases := []Request{
		{Tenant: "t", Inputs: nil},
		{Tenant: "t", Inputs: map[string]*tensor.Tensor{"x": tensor.New()}},
		{Tenant: "t", Priority: numLanes, Inputs: map[string]*tensor.Tensor{"x": tensor.New(1, 2)}},
		{Tenant: "t", Inputs: map[string]*tensor.Tensor{
			"x": tensor.New(1, 2), "w": tensor.New(2, 2)}}, // mismatched item counts
	}
	for i, req := range cases {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("case %d: err = %v, want ErrBadRequest", i, err)
		}
	}
}

func TestDeclaredShapesGateAdmission(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond,
		ItemShapes: map[string][]int{"x": {1, 4}}})

	bad := []map[string]*tensor.Tensor{
		{"x": tensor.New(1, 3)},                        // wrong item width
		{"x": tensor.New(1, 4, 1)},                     // wrong rank
		{"y": tensor.New(1, 4)},                        // unknown name
		{"x": tensor.New(1, 4), "y": tensor.New(1, 4)}, // extra input
	}
	for i, in := range bad {
		if _, err := s.Submit(Request{Tenant: "t", Inputs: in}); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("bad case %d admitted: %v", i, err)
		}
	}
	// Conforming requests pass whatever their item count.
	if _, err := s.Infer(context.Background(), Request{Tenant: "t",
		Inputs: map[string]*tensor.Tensor{"x": tensor.New(3, 4)}}); err != nil {
		t.Fatalf("conforming 3-item request rejected: %v", err)
	}
	if got := fe.batches(); len(got) != 1 {
		t.Fatalf("engine saw %d batches, want only the conforming one", len(got))
	}
}

// TestWRRPickOrder drives the scheduler's pick directly (no goroutines): a
// weight-3 tenant must receive three picks for every one of a weight-1
// tenant, and the High lane must always preempt Normal and Low.
func TestWRRPickOrder(t *testing.T) {
	s := &Server{
		cfg:     Config{Tenants: map[string]TenantConfig{"heavy": {Weight: 3}}},
		met:     newServeMetrics(telemetry.NewRegistry()),
		tenants: make(map[string]*tenantState),
	}
	s.cfg.fill()

	enq := func(tenant string, lane Priority, n int) {
		st := s.tenant(tenant)
		for i := 0; i < n; i++ {
			st.lanes[lane] = append(st.lanes[lane], &pendingReq{tenant: st, lane: lane, sig: "x;"})
			st.depth++
			s.queued++
		}
	}
	enq("heavy", Normal, 9)
	enq("light", Normal, 9)
	enq("light", Low, 1)
	enq("light", High, 1)

	var order []string
	for {
		p := s.pick("")
		if p == nil {
			break
		}
		order = append(order, p.tenant.name+"/"+p.lane.String())
	}
	if len(order) != 20 {
		t.Fatalf("picked %d, want 20", len(order))
	}
	if order[0] != "light/high" {
		t.Fatalf("first pick %q, want the High-lane request", order[0])
	}
	if last := order[len(order)-1]; last != "light/low" {
		t.Fatalf("last pick %q, want the Low-lane request", last)
	}
	// Inside the Normal lane, every weight round serves heavy 3x and light
	// 1x until heavy's queue dries up; count the first two rounds.
	heavyFirst8 := 0
	for _, o := range order[1:9] {
		if o == "heavy/normal" {
			heavyFirst8++
		}
	}
	if heavyFirst8 != 6 {
		t.Fatalf("heavy got %d of the first 8 Normal picks, want 6 (3:1 WRR)", heavyFirst8)
	}
}

func TestPickRestrictedBySignature(t *testing.T) {
	s := &Server{
		cfg:     Config{},
		met:     newServeMetrics(telemetry.NewRegistry()),
		tenants: make(map[string]*tenantState),
	}
	s.cfg.fill()
	st := s.tenant("t")
	a := &pendingReq{tenant: st, lane: Normal, sig: "a;"}
	b := &pendingReq{tenant: st, lane: Normal, sig: "b;"}
	st.lanes[Normal] = []*pendingReq{a, b}
	st.depth, s.queued = 2, 2

	if p := s.pick("b;"); p != nil {
		t.Fatalf("pick reordered past an incompatible FIFO head: %v", p.sig)
	}
	if p := s.pick("a;"); p != a {
		t.Fatal("compatible head not picked")
	}
	if p := s.pick("b;"); p != b {
		t.Fatal("next head not picked after first drained")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- real-engine integration ---------------------------------------------------

// pipeVariant is a wire-speaking fake variant on one end of a net.Pipe,
// mirroring the monitor package's test double: behave maps a batch's inputs
// to outputs (or an error string, simulating a crash).
type pipeVariant struct {
	id     string
	behave func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string)
}

func (v *pipeVariant) start(t *testing.T, partition int) *monitor.Handle {
	t.Helper()
	monC, varC := net.Pipe()
	mc, vc := securechan.Plain(monC), securechan.Plain(varC)
	go func() {
		for {
			msg, err := wire.Recv(vc)
			if err != nil {
				return
			}
			switch m := msg.(type) {
			case *wire.Batch:
				outs, errStr := v.behave(m.Tensors)
				res := &wire.Result{ID: m.ID, Trace: m.Trace, VariantID: v.id, Err: errStr, Tensors: outs}
				if err := wire.Send(vc, res); err != nil {
					return
				}
			case *wire.Shutdown:
				_ = vc.Close()
				return
			}
		}
	}()
	return monitor.NewHandle(v.id, partition, "spec", mc)
}

func doubleRows(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
	y := in["x"].Clone()
	y.Scale(2)
	return map[string]*tensor.Tensor{"y": y}, ""
}

// TestDemuxAfterHotReplacement streams many single-item requests through a
// real MVX engine while one variant crashes mid-stream and a spare is
// promoted (PR 2 hot replacement). Every response must still carry exactly
// its own request's rows — the request→result mapping survives the
// replacement because engine batch IDs are stable across it.
func TestDemuxAfterHotReplacement(t *testing.T) {
	poison := float32(1313)
	evil := &pipeVariant{id: "evil", behave: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
		for _, v := range in["x"].Data() {
			if v == poison {
				return nil, "simulated crash"
			}
		}
		return doubleRows(in)
	}}
	good1 := &pipeVariant{id: "good1", behave: doubleRows}
	good2 := &pipeVariant{id: "good2", behave: doubleRows}

	var spares atomic.Int64
	cfg := monitor.EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"y"},
		Stages: []monitor.StageSpec{{
			Inputs:  []string{"x"},
			Outputs: []string{"y"},
			Handles: []*monitor.Handle{good1.start(t, 0), good2.start(t, 0), evil.start(t, 0)},
		}},
		Response: monitor.Recover,
		Replace: func(stage, slot int, deadID string, sinceBatch uint64) (*monitor.Handle, error) {
			n := spares.Add(1)
			sp := &pipeVariant{id: fmt.Sprintf("spare-%d", n), behave: doubleRows}
			return sp.start(t, 0), nil
		},
		Metrics: telemetry.NewRegistry(),
	}
	eng, err := monitor.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	t.Cleanup(eng.Stop)

	s := newTestServer(t, eng, Config{MaxBatch: 4, MaxDelay: 2 * time.Millisecond})

	const clients = 8
	const perClient = 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				v := float32(c*1000 + i)
				if c == 3 && i == 10 {
					v = poison // kills the evil variant mid-stream
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				r, err := s.Infer(ctx, itemReq(fmt.Sprintf("tenant%d", c%3), Normal, v))
				cancel()
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %w", c, i, err)
					return
				}
				if got := r.Tensors["y"].At(0, 0); got != 2*v {
					errs <- fmt.Errorf("client %d req %d: y=%v want %v (demux mixed batches)", c, i, got, 2*v)
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The crash must have promoted exactly one spare.
	waitFor(t, func() bool { return spares.Load() >= 1 })
	replaced := false
	for _, ev := range eng.Events() {
		if ev.Kind == monitor.EventVariantReplaced {
			replaced = true
		}
	}
	if !replaced {
		t.Fatal("no EventVariantReplaced recorded — the crash never triggered replacement")
	}
}
