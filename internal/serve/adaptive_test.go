package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/monitor"
)

// TestTenantEvictionBoundsUndeclaredState is the regression test for the
// unbounded tenant-state growth bug: an adversary rotating tenant names must
// not grow the tenant map or the WRR ring without bound, while declared
// tenants survive any amount of rotation.
func TestTenantEvictionBoundsUndeclaredState(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{
		MaxBatch: 1, MaxDelay: time.Millisecond, MaxTenants: 4,
		Tenants: map[string]TenantConfig{"vip": {Weight: 3}},
	})

	ctx := context.Background()
	if _, err := s.Infer(ctx, itemReq("vip", Normal, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Infer(ctx, itemReq(fmt.Sprintf("rot-%d", i), Normal, 1)); err != nil {
			t.Fatalf("rotated tenant %d: %v", i, err)
		}
	}

	s.mu.Lock()
	resident := len(s.tenants)
	ringLen := len(s.ring)
	undeclared := s.undeclared
	_, vipAlive := s.tenants["vip"]
	s.mu.Unlock()

	if undeclared > 4 {
		t.Errorf("undeclared tenants = %d, want <= MaxTenants (4)", undeclared)
	}
	if resident > 5 { // 4 undeclared + vip
		t.Errorf("resident tenant states = %d, want <= 5", resident)
	}
	if ringLen != resident {
		t.Errorf("ring length %d != tenant map size %d", ringLen, resident)
	}
	if !vipAlive {
		t.Error("declared tenant evicted; declared tenants must be permanent")
	}

	// Evicted tenants and the declared tenant keep working after eviction.
	if _, err := s.Infer(ctx, itemReq("rot-0", Normal, 1)); err != nil {
		t.Fatalf("re-admitting evicted tenant: %v", err)
	}
	if _, err := s.Infer(ctx, itemReq("vip", High, 1)); err != nil {
		t.Fatalf("declared tenant after rotation: %v", err)
	}
}

// TestShedRetryAfterScalesWithLevel is the regression test for the constant
// shed Retry-After bug: a client rejected because the engine halted must be
// told to back off much longer than one rejected at mild shedding.
func TestShedRetryAfterScalesWithLevel(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{ShedInterval: time.Millisecond})

	prev := time.Duration(0)
	for _, lvl := range []ShedLevel{ShedLow, ShedToHigh, ShedAll} {
		got := s.shedRetryAfter(lvl)
		if got <= prev {
			t.Errorf("shedRetryAfter(%v) = %v, want > %v", lvl, got, prev)
		}
		prev = got
	}
	if base := s.shedRetryAfter(ShedAll); base < time.Second {
		t.Errorf("halted-engine hint = %v, want >= 1s at the default base", base)
	}

	// End to end: halt the ladder and check the rejection carries the
	// scaled hint, not the old constant one-window hint.
	fe.setLadder(monitor.LadderHalted)
	waitFor(t, func() bool { return s.Shed() == ShedAll })
	_, err := s.Submit(itemReq("acme", High, 1))
	oe, ok := err.(*OverloadError)
	if !ok {
		t.Fatalf("want *OverloadError, got %v", err)
	}
	if oe.Scope != "shed" || oe.RetryAfter != s.shedRetryAfter(ShedAll) {
		t.Errorf("shed rejection = %+v, want scope shed with RetryAfter %v",
			oe, s.shedRetryAfter(ShedAll))
	}
}

func TestShedLevelString(t *testing.T) {
	cases := []struct {
		lvl  ShedLevel
		want string
	}{
		{ShedNone, "none"},
		{ShedLow, "shed-low"},
		{ShedToHigh, "shed-to-high"},
		{ShedAll, "shed-all"},
		{ShedLevel(7), "ShedLevel(7)"},
		{ShedLevel(-2), "ShedLevel(-2)"},
	}
	for _, c := range cases {
		if got := c.lvl.String(); got != c.want {
			t.Errorf("ShedLevel(%d).String() = %q, want %q", int(c.lvl), got, c.want)
		}
	}
}

func TestPriorityString(t *testing.T) {
	cases := []struct {
		p    Priority
		want string
	}{
		{High, "high"},
		{Normal, "normal"},
		{Low, "low"},
		{Priority(9), "Priority(9)"},
		{Priority(-1), "Priority(-1)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Priority(%d).String() = %q, want %q", int(c.p), got, c.want)
		}
	}
}

// TestSetBatchWindowRetunesScheduler verifies a live window change takes
// effect on subsequent batch assemblies.
func TestSetBatchWindowRetunesScheduler(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 8, MaxDelay: 10 * time.Second})
	s.SetBatchWindow(2, 10*time.Second)
	if mb, md := s.BatchWindow(); mb != 2 || md != 10*time.Second {
		t.Fatalf("BatchWindow() = %d, %v", mb, md)
	}

	resps := make([]<-chan Response, 4)
	for i := range resps {
		ch, err := s.Submit(itemReq("acme", Normal, float32(i)))
		if err != nil {
			t.Fatal(err)
		}
		resps[i] = ch
	}
	for _, ch := range resps {
		r := <-ch
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.BatchFill > 2 {
			t.Errorf("batch fill %d exceeds retuned MaxBatch 2", r.BatchFill)
		}
	}

	// Clamping: nonsense values cannot wedge the scheduler.
	s.SetBatchWindow(0, -time.Second)
	if mb, md := s.BatchWindow(); mb != 1 || md != 0 {
		t.Errorf("clamped window = %d, %v, want 1, 0", mb, md)
	}
}

// TestShedFloorNeverAdmitsPastLadder pins the controller-safety invariant:
// the effective shed level is the max of ladder-derived level and floor, so
// no floor setting can re-admit lanes the ladder shed.
func TestShedFloorNeverAdmitsPastLadder(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{ShedInterval: time.Millisecond})

	fe.setLadder(monitor.LadderSingle) // → ShedToHigh
	waitFor(t, func() bool { return s.Shed() == ShedToHigh })

	s.SetShedFloor(ShedNone) // a floor below the ladder must change nothing
	if got := s.Shed(); got != ShedToHigh {
		t.Fatalf("floor ShedNone lowered effective level to %v", got)
	}
	if _, err := s.Submit(itemReq("acme", Normal, 1)); err == nil {
		t.Fatal("Normal lane admitted while ladder demands ShedToHigh")
	}

	s.SetShedFloor(ShedAll) // a floor above the ladder adds shedding
	if got := s.Shed(); got != ShedAll {
		t.Fatalf("effective = %v, want ShedAll with floor set", got)
	}
	if _, err := s.Submit(itemReq("acme", High, 1)); err == nil {
		t.Fatal("High lane admitted under ShedAll floor")
	}

	s.SetShedFloor(ShedNone)
	fe.setLadder(monitor.LadderFull)
	waitFor(t, func() bool { return s.Shed() == ShedNone })
	if _, err := s.Submit(itemReq("acme", Low, 1)); err != nil {
		t.Fatalf("recovered server rejected Low lane: %v", err)
	}
}

func TestSetTenantWeight(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{Tenants: map[string]TenantConfig{
		"acme": {Weight: 2, SLO: 50 * time.Millisecond},
	}})
	if w := s.TenantWeight("ghost"); w != 0 {
		t.Errorf("unknown tenant weight = %d, want 0", w)
	}
	s.SetTenantWeight("acme", 6)
	if w := s.TenantWeight("acme"); w != 6 {
		t.Errorf("weight = %d, want 6", w)
	}
	s.SetTenantWeight("acme", 0) // clamps to 1
	if w := s.TenantWeight("acme"); w != 1 {
		t.Errorf("clamped weight = %d, want 1", w)
	}
	slos := s.TenantSLOs()
	if slos["acme"] != 50*time.Millisecond {
		t.Errorf("TenantSLOs = %v", slos)
	}
}
