package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// trickyFloats are finite values that stress a text codec: negative zero, a
// denormal, near-max magnitudes, and a non-terminating binary fraction. (NaN
// and Inf cannot ride JSON at all; the wire package tests those binary-only.
// Kept under half of MaxFloat32 so the doubling test model stays finite.)
func trickyFloats() []float32 {
	return []float32{
		float32(math.Copysign(0, -1)),
		math.Float32frombits(1), // smallest denormal
		1.5e38,
		-math.SmallestNonzeroFloat32,
		1.0 / 3.0,
		-2.5e-12,
	}
}

func binClient(url string) *Client { return &Client{BaseURL: url, Binary: true} }

func TestHTTPBinaryInfer(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	in := tensor.MustFromSlice(trickyFloats(), 1, len(trickyFloats()))
	r, err := binClient(ts.URL).Infer(context.Background(), Request{
		Tenant:   "acme",
		Priority: High,
		Inputs:   map[string]*tensor.Tensor{"x": in},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID == 0 || r.BatchID == 0 {
		t.Fatalf("missing ids: %+v", r)
	}
	y := r.Tensors["y"]
	if y == nil || !y.SameShape(in) {
		t.Fatalf("y = %v, want shape %v", y, in.Shape())
	}
	for i, v := range in.Data() {
		if got, want := y.Data()[i], 2*v; math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("y[%d] bits %x, want %x", i, math.Float32bits(got), math.Float32bits(want))
		}
	}
	// The tenant and priority headers must have reached admission: the fake
	// engine saw exactly one batch with our row.
	if got := fe.batches(); len(got) != 1 || got[0]["x"].Dim(0) != 1 {
		t.Fatalf("engine saw %v", got)
	}
}

// TestHTTPBinaryJSONEquivalence drives the same request through both content
// types and demands bitwise-identical outputs — the acceptance bar for the
// binary path being a transport change, not a numerics change.
func TestHTTPBinaryJSONEquivalence(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	in := tensor.MustFromSlice(trickyFloats(), 2, 3)
	req := func() Request {
		return Request{Tenant: "t", Inputs: map[string]*tensor.Tensor{"x": in.Clone()}}
	}
	jr, err := (&Client{BaseURL: ts.URL}).Infer(context.Background(), req())
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	br, err := binClient(ts.URL).Infer(context.Background(), req())
	if err != nil {
		t.Fatalf("binary: %v", err)
	}
	jy, by := jr.Tensors["y"], br.Tensors["y"]
	if !jy.SameShape(by) {
		t.Fatalf("shapes diverge: json %v binary %v", jy.Shape(), by.Shape())
	}
	for i := range jy.Data() {
		if jb, bb := math.Float32bits(jy.Data()[i]), math.Float32bits(by.Data()[i]); jb != bb {
			t.Fatalf("element %d: json bits %x != binary bits %x", i, jb, bb)
		}
	}
}

func TestHTTPContentNegotiation(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// JSON request + Accept: binary → binary response body.
	jbody, err := json.Marshal(InferRequest{Inputs: map[string]WireTensor{
		"x": {Shape: []int{1, 2}, Data: []float32{3, 4}}}})
	if err != nil {
		t.Fatal(err)
	}
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(jbody))
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("Accept", wire.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Fatalf("Content-Type %q, want binary", ct)
	}
	meta, outs, err := wire.DecodeResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Tensors != 1 || outs["y"].At(0, 0) != 6 {
		t.Fatalf("binary response meta=%+v outs=%v", meta, outs)
	}

	// Binary request + Accept: application/json → JSON response body.
	var bbody bytes.Buffer
	if err := wire.EncodeRequest(&bbody, map[string]*tensor.Tensor{
		"x": tensor.MustFromSlice([]float32{5, 6}, 1, 2)}); err != nil {
		t.Fatal(err)
	}
	hr, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", &bbody)
	hr.Header.Set("Content-Type", wire.ContentTypeBinary)
	hr.Header.Set("Accept", "application/json")
	resp2, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want JSON", ct)
	}
	var out InferResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if got := out.Outputs["y"].Data; len(got) != 2 || got[0] != 10 || got[1] != 12 {
		t.Fatalf("json response outputs %v", out.Outputs)
	}

	// An unknown Content-Type is refused outright.
	resp3, err := http.Post(ts.URL+"/v1/infer", "application/x-protobuf", bytes.NewReader(jbody))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("unknown content type: status %d, want 415", resp3.StatusCode)
	}
}

// reorderEngine withholds results until `hold` submissions have arrived, then
// delivers them in reverse order — the delivery pattern a hot replacement
// mid-stream produces (later batches from the promoted spare overtake earlier
// ones). The demux must still route every result to its own waiter.
type reorderEngine struct {
	mu   sync.Mutex
	ids  uint64
	outs chan monitor.BatchResult
	pend []monitor.BatchResult
	hold int
}

func (e *reorderEngine) Submit(in map[string]*tensor.Tensor) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ids++
	y := in["x"].Clone()
	y.Scale(2)
	e.pend = append(e.pend, monitor.BatchResult{ID: e.ids,
		Tensors: map[string]*tensor.Tensor{"y": y}})
	if len(e.pend) >= e.hold {
		for i := len(e.pend) - 1; i >= 0; i-- {
			e.outs <- e.pend[i]
		}
		e.pend = nil
	}
	return e.ids, nil
}

func (e *reorderEngine) Outputs() <-chan monitor.BatchResult { return e.outs }
func (e *reorderEngine) Ladder() []monitor.LadderRung {
	return []monitor.LadderRung{monitor.LadderFull}
}

func TestHTTPBinaryStreamingOutOfOrderDelivery(t *testing.T) {
	const clients = 6
	eng := &reorderEngine{outs: make(chan monitor.BatchResult, 64), hold: clients}
	s := newTestServer(t, eng, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			v := float32(100 + c)
			r, err := binClient(ts.URL).Infer(context.Background(), Request{
				Tenant: "t",
				Inputs: map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{v}, 1, 1)},
			})
			if err != nil {
				errs <- err
				return
			}
			if got := r.Tensors["y"].At(0, 0); got != 2*v {
				errs <- errors.New("reordered delivery crossed streams")
				return
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestHTTPBinaryOverload429Frame(t *testing.T) {
	fe := newFakeEngine()
	fe.block = make(chan struct{})
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond, TenantQueue: 1})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	defer close(fe.block)

	// Saturate in two deterministic steps (see TestHTTPOverloadHas429AndRetryAfter).
	bgPost := func() {
		resp := postInfer(t, ts.URL, InferRequest{Tenant: "t",
			Inputs: map[string]WireTensor{"x": {Shape: []int{1, 1}, Data: []float32{1}}}})
		resp.Body.Close()
	}
	go bgPost()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.flushing
	})
	go bgPost()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queued >= 1
	})

	_, err := binClient(ts.URL).Infer(context.Background(), Request{Tenant: "t",
		Inputs: map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1}, 1, 1)}})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StatusError", err)
	}
	if se.Status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", se.Status)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("binary error frame lost the retry-after hint: %+v", se)
	}
}

func TestHTTPBinaryDrain503Frame(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	_, err := binClient(ts.URL).Infer(context.Background(), Request{Tenant: "t",
		Inputs: map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1}, 1, 1)}})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want *StatusError 503", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("drain rejection without retry-after: %+v", se)
	}
}

func TestHTTPBinaryShapeRejectedAtAdmission(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond,
		ItemShapes: map[string][]int{"x": {1, 4}}})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	bad := []map[string]*tensor.Tensor{
		{"y": tensor.New(1, 4)},    // unknown input
		{"x": tensor.New(1, 3)},    // wrong item width
		{"x": tensor.New(1, 4, 1)}, // wrong rank
		{"x": tensor.New(65, 4)},   // over MaxItems
	}
	for i, in := range bad {
		_, err := binClient(ts.URL).Infer(context.Background(), Request{Tenant: "t", Inputs: in})
		var se *StatusError
		if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
			t.Fatalf("bad case %d: err = %v, want *StatusError 400", i, err)
		}
	}
	// The conforming request still passes, whatever its item count.
	if _, err := binClient(ts.URL).Infer(context.Background(), Request{Tenant: "t",
		Inputs: map[string]*tensor.Tensor{"x": tensor.New(3, 4)}}); err != nil {
		t.Fatalf("conforming request rejected: %v", err)
	}
}

// zeroReader yields zero bytes forever.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

func TestHTTPBinaryBodyTooLarge(t *testing.T) {
	fe := newFakeEngine()
	// No declared interface: the binary cap falls back to the flat 64 MiB.
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// A framing-valid request whose one tensor declares a ~1 GiB payload:
	// shape (64, 1<<22), volume 2^28 floats. It must die with 413 at header
	// cost — before the decoder allocates the backing array, and long before
	// a gigabyte crosses the wire.
	var hdr bytes.Buffer
	hdr.Write([]byte{'M', 'V', 'T', 1, 1, 0}) // version 1, count 1
	const vol = 64 << 22
	body := make([]byte, 5+2+1+4+8)
	body[0] = wire.FrameTensor
	binary.LittleEndian.PutUint32(body[1:], uint32(2+1+4+8+4*vol))
	binary.LittleEndian.PutUint16(body[5:], 1) // name "x"
	body[7] = 'x'
	binary.LittleEndian.PutUint32(body[8:], 2) // rank 2: (64, 1<<22)
	binary.LittleEndian.PutUint32(body[12:], 64)
	binary.LittleEndian.PutUint32(body[16:], 1<<22)
	hdr.Write(body)

	sent := &trackingReader{r: io.MultiReader(bytes.NewReader(hdr.Bytes()), io.LimitReader(zeroReader{}, 4*vol))}
	resp, err := http.Post(ts.URL+"/v1/infer", wire.ContentTypeBinary, io.NopCloser(sent))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	// The counter sees what the client transport pumped before noticing the
	// reset, not what the server consumed, so allow generous in-flight slack —
	// the point is the gigabyte never moved.
	if n := sent.n.Load(); n > 32<<20 {
		t.Fatalf("client pumped %d bytes of an undeliverable request, want early rejection", n)
	}

	// The flip side of a tight cap: a maximal legitimate request under a
	// declared interface passes, where the JSON-sized estimate would... also
	// pass — the point is the binary cap is ~6x tighter and still admits it.
	s2 := newTestServer(t, newFakeEngine(), Config{MaxBatch: 1, MaxDelay: time.Millisecond,
		ItemShapes: map[string][]int{"x": {1, 256}}})
	ts2 := httptest.NewServer(Handler(s2))
	defer ts2.Close()
	if _, err := binClient(ts2.URL).Infer(context.Background(), Request{Tenant: "t",
		Inputs: map[string]*tensor.Tensor{"x": tensor.New(64, 256)}}); err != nil {
		t.Fatalf("maximal request under declared interface rejected: %v", err)
	}
}

// trackingReader counts bytes the server actually pulled from the client.
// The transport goroutine may still be pumping the body when the test
// goroutine inspects the count, so it must be atomic.
type trackingReader struct {
	r io.Reader
	n atomic.Int64
}

func (t *trackingReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	t.n.Add(int64(n))
	return n, err
}

func TestHTTPBinaryDisabled(t *testing.T) {
	fe := newFakeEngine()
	s := newTestServer(t, fe, Config{MaxBatch: 1, MaxDelay: time.Millisecond, DisableBinary: true})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	_, err := binClient(ts.URL).Infer(context.Background(), Request{Tenant: "t",
		Inputs: map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1}, 1, 1)}})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusUnsupportedMediaType {
		t.Fatalf("binary against disabled server: err = %v, want *StatusError 415", err)
	}
	// JSON keeps working: the gate is per-protocol, not per-endpoint.
	if _, err := (&Client{BaseURL: ts.URL}).Infer(context.Background(), Request{Tenant: "t",
		Inputs: map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1}, 1, 1)}}); err != nil {
		t.Fatalf("json on binary-disabled server: %v", err)
	}

	// /healthz advertises only JSON here, both protocols on a default server.
	protocols := func(url string) []string {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Protocols
	}
	if got := protocols(ts.URL); len(got) != 1 || got[0] != "application/json" {
		t.Fatalf("disabled server advertises %v", got)
	}
	s2 := newTestServer(t, newFakeEngine(), Config{MaxBatch: 1, MaxDelay: time.Millisecond})
	ts2 := httptest.NewServer(Handler(s2))
	defer ts2.Close()
	if got := protocols(ts2.URL); len(got) != 2 || got[1] != wire.ContentTypeBinary+";v=1" {
		t.Fatalf("default server advertises %v", got)
	}
}
