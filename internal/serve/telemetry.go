package serve

import (
	"sync"

	"repro/internal/telemetry"
)

// admitVerdict indexes the admission-outcome counters.
type admitVerdict int

const (
	admitAdmitted admitVerdict = iota
	admitRejectTenant
	admitRejectGlobal
	admitShed
	admitDraining
	numVerdicts
)

// flushReason indexes the batch-flush counters.
type flushReason int

const (
	flushSize flushReason = iota
	flushTimer
	flushDrain
	numReasons
)

// tenantMetrics are one tenant's series, resolved once on first request.
type tenantMetrics struct {
	requests  *telemetry.Counter
	rejected  *telemetry.Counter
	depth     *telemetry.Gauge
	latencyNs *telemetry.Histogram
}

// serveMetrics holds the server's pre-resolved telemetry handles; hot-path
// records are lock-free atomic ops (per-tenant handles are cached after the
// tenant's first request).
type serveMetrics struct {
	reg         *telemetry.Registry
	admissions  [numVerdicts]*telemetry.Counter
	flushes     [numReasons]*telemetry.Counter
	batchFill   *telemetry.Histogram
	globalDepth *telemetry.Gauge
	shedLevel   *telemetry.Gauge
	inflight    *telemetry.Gauge
	protos      [2]*telemetry.Counter // [json, binary] request codecs

	mu      sync.Mutex
	tenants map[string]*tenantMetrics
	// overflow is the shared no-op handle set handed to undeclared tenants
	// past the per-tenant series cap: the registry never deletes series, so
	// attacker-rotated tenant names must not register unboundedly. Its nil
	// fields make every record a nil-safe no-op.
	overflow tenantMetrics
}

// tenantSeriesCap bounds how many distinct undeclared tenant names may
// register per-tenant series; declared tenants always register.
const tenantSeriesCap = 256

func newServeMetrics(reg *telemetry.Registry) *serveMetrics {
	if reg == nil {
		reg = telemetry.Default
	}
	m := &serveMetrics{reg: reg, tenants: make(map[string]*tenantMetrics)}
	verdicts := [numVerdicts]string{
		telemetry.AdmitOutcomeAdmitted,
		telemetry.AdmitOutcomeRejectTenant,
		telemetry.AdmitOutcomeRejectGlobal,
		telemetry.AdmitOutcomeShed,
		telemetry.AdmitOutcomeDraining,
	}
	for i, v := range verdicts {
		m.admissions[i] = reg.Counter(telemetry.MetricServeAdmission, telemetry.L("verdict", v))
	}
	reasons := [numReasons]string{
		telemetry.FlushReasonSize,
		telemetry.FlushReasonTimer,
		telemetry.FlushReasonDrain,
	}
	for i, r := range reasons {
		m.flushes[i] = reg.Counter(telemetry.MetricServeFlushes, telemetry.L("reason", r))
	}
	m.protos[0] = reg.Counter(telemetry.MetricServeProto, telemetry.L("proto", "json"))
	m.protos[1] = reg.Counter(telemetry.MetricServeProto, telemetry.L("proto", "binary"))
	m.batchFill = reg.Histogram(telemetry.MetricServeBatchFill)
	m.globalDepth = reg.Gauge(telemetry.MetricServeQueueGlobal)
	m.shedLevel = reg.Gauge(telemetry.MetricServeShedLevel)
	m.inflight = reg.Gauge(telemetry.MetricServeInflight)
	return m
}

func (m *serveMetrics) tenant(name string, declared bool) *tenantMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[name]
	if !ok {
		if !declared && len(m.tenants) >= tenantSeriesCap {
			return &m.overflow
		}
		l := telemetry.L("tenant", name)
		t = &tenantMetrics{
			requests:  m.reg.Counter(telemetry.MetricServeRequests, l),
			rejected:  m.reg.Counter(telemetry.MetricServeAdmission, telemetry.L("verdict", telemetry.AdmitOutcomeRejectTenant), l),
			depth:     m.reg.Gauge(telemetry.MetricServeQueueDepth, l),
			latencyNs: m.reg.Histogram(telemetry.MetricServeLatencyNs, l),
		}
		m.tenants[name] = t
	}
	return t
}

func (m *serveMetrics) admission(v admitVerdict) { m.admissions[v].Inc() }

// proto counts one HTTP request by its request codec.
func (m *serveMetrics) proto(binary bool) {
	if binary {
		m.protos[1].Inc()
	} else {
		m.protos[0].Inc()
	}
}

func (m *serveMetrics) flush(r flushReason, fill, inflight int) {
	m.flushes[r].Inc()
	m.batchFill.Observe(int64(fill))
	m.inflight.Set(int64(inflight))
}
