package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/tensor"
	"repro/internal/wire"
)

// Client is a Go client for the serving front door (POST /v1/infer). The
// zero value plus BaseURL works; set Binary to speak the streaming binary
// protocol instead of JSON — same requests, same responses, ~10x cheaper
// decode at large tensors.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// Binary selects application/x-mvtee-tensor for request and response
	// bodies; false speaks float32-JSON.
	Binary bool
}

// StatusError is a non-2xx front-door answer, decoded from whichever error
// envelope (JSON or binary frame) the server sent.
type StatusError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("serve: HTTP %d: %s (retry after %v)", e.Status, e.Msg, e.RetryAfter)
	}
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Msg)
}

// Infer issues one inference request and decodes the response. Overload and
// drain rejections come back as *StatusError carrying the server's
// retry-after hint.
func (c *Client) Infer(ctx context.Context, req Request) (Response, error) {
	if c.Binary {
		return c.inferBinary(ctx, req)
	}
	return c.inferJSON(ctx, req)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) inferJSON(ctx context.Context, req Request) (Response, error) {
	jr := InferRequest{
		Tenant:   req.Tenant,
		Priority: req.Priority.String(),
		Inputs:   make(map[string]WireTensor, len(req.Inputs)),
	}
	for name, t := range req.Inputs {
		jr.Inputs[name] = WireTensor{Shape: t.Shape(), Data: t.Data()}
	}
	body, err := json.Marshal(jr)
	if err != nil {
		return Response{}, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		return Response{}, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return Response{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Response{}, decodeJSONError(resp)
	}
	var out InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Response{}, err
	}
	r := Response{
		ID:        out.ID,
		BatchID:   out.BatchID,
		BatchFill: out.BatchFill,
		Latency:   time.Duration(out.LatencyMS * float64(time.Millisecond)),
		Tensors:   make(map[string]*tensor.Tensor, len(out.Outputs)),
	}
	for name, wt := range out.Outputs {
		t, err := tensor.FromSlice(wt.Data, wt.Shape...)
		if err != nil {
			return Response{}, fmt.Errorf("serve: output %q: %w", name, err)
		}
		r.Tensors[name] = t
	}
	return r, nil
}

func (c *Client) inferBinary(ctx context.Context, req Request) (Response, error) {
	var body bytes.Buffer
	body.Grow(int(wire.RequestEncodedSize(req.Inputs)))
	if err := wire.EncodeRequest(&body, req.Inputs); err != nil {
		return Response{}, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/infer", &body)
	if err != nil {
		return Response{}, err
	}
	hr.Header.Set("Content-Type", wire.ContentTypeBinary)
	hr.Header.Set("Accept", wire.ContentTypeBinary)
	if req.Tenant != "" {
		hr.Header.Set(HeaderTenant, req.Tenant)
	}
	hr.Header.Set(HeaderPriority, req.Priority.String())
	resp, err := c.httpClient().Do(hr)
	if err != nil {
		return Response{}, err
	}
	defer resp.Body.Close()
	meta, outs, err := wire.DecodeResponse(resp.Body)
	if err != nil {
		if pe, ok := err.(*wire.PubError); ok {
			return Response{}, &StatusError{Status: pe.Status, Msg: pe.Msg, RetryAfter: pe.RetryAfter}
		}
		if resp.StatusCode != http.StatusOK {
			return Response{}, &StatusError{Status: resp.StatusCode, Msg: err.Error()}
		}
		return Response{}, err
	}
	return Response{
		ID:        meta.ID,
		BatchID:   meta.BatchID,
		BatchFill: meta.BatchFill,
		Latency:   meta.Latency,
		Tensors:   outs,
	}, nil
}

// decodeJSONError turns a non-200 JSON answer into a *StatusError.
func decodeJSONError(resp *http.Response) error {
	var eb errorBody
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
		eb.Error = string(bytes.TrimSpace(raw))
	}
	return &StatusError{
		Status:     resp.StatusCode,
		Msg:        eb.Error,
		RetryAfter: time.Duration(eb.RetryAfter * float64(time.Second)),
	}
}
