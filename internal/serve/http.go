package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"repro/internal/tensor"
)

// HTTP API types. Tensors travel as shape + flat row-major data.

// WireTensor is the JSON tensor encoding.
type WireTensor struct {
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data"`
}

// InferRequest is the POST /v1/infer body.
type InferRequest struct {
	Tenant   string                `json:"tenant,omitempty"`
	Priority string                `json:"priority,omitempty"` // high | normal | low
	Inputs   map[string]WireTensor `json:"inputs"`
}

// InferResponse is the POST /v1/infer success body.
type InferResponse struct {
	ID        uint64                `json:"id"`
	BatchID   uint64                `json:"batch_id"`
	BatchFill int                   `json:"batch_fill"`
	LatencyMS float64               `json:"latency_ms"`
	Outputs   map[string]WireTensor `json:"outputs"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error      string  `json:"error"`
	RetryAfter float64 `json:"retry_after_s,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status   string         `json:"status"` // serving | draining
	Shed     string         `json:"shed"`
	Ladder   []string       `json:"ladder"`
	Queues   map[string]int `json:"queues"`
	Draining bool           `json:"draining"`
}

// Handler serves the front-end HTTP API over s:
//
//	POST /v1/infer  — one inference request (429 + Retry-After on overload)
//	GET  /healthz   — serving status, shed level, ladder, queue depths
func Handler(s *Server) http.Handler {
	bodyLimit := maxBodyBytes(s.cfg)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, bodyLimit)
		var req InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			status := http.StatusBadRequest
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				status = http.StatusRequestEntityTooLarge
			}
			writeErr(w, status, err, 0)
			return
		}
		prio, err := ParsePriority(req.Priority)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err, 0)
			return
		}
		inputs := make(map[string]*tensor.Tensor, len(req.Inputs))
		for name, wt := range req.Inputs {
			t, err := tensor.FromSlice(wt.Data, wt.Shape...)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("input %q: %w", name, err), 0)
				return
			}
			inputs[name] = t
		}
		resp, err := s.Infer(r.Context(), Request{Tenant: req.Tenant, Priority: prio, Inputs: inputs})
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away (or its deadline passed) mid-request;
				// there is no one to answer and it is not a server fault —
				// don't let the abort show up as a 5xx in logs and metrics.
				return
			}
			status, retry := errStatus(err)
			writeErr(w, status, err, retry)
			return
		}
		out := InferResponse{
			ID:        resp.ID,
			BatchID:   resp.BatchID,
			BatchFill: resp.BatchFill,
			LatencyMS: float64(resp.Latency) / float64(time.Millisecond),
			Outputs:   make(map[string]WireTensor, len(resp.Tensors)),
		}
		for name, t := range resp.Tensors {
			out.Outputs[name] = WireTensor{Shape: t.Shape(), Data: t.Data()}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ladder := s.engine.Ladder()
		h := Health{
			Status:   "serving",
			Shed:     s.Shed().String(),
			Queues:   s.QueueDepths(),
			Draining: s.Draining(),
		}
		for _, rung := range ladder {
			h.Ladder = append(h.Ladder, rung.String())
		}
		if h.Draining {
			h.Status = "draining"
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h)
	})
	return mux
}

// errStatus maps serving errors onto HTTP semantics: overload and draining
// are retryable (429/503 with Retry-After), bad requests are 400, the rest
// are internal.
func errStatus(err error) (status int, retryAfter time.Duration) {
	var ov *OverloadError
	switch {
	case errors.As(err, &ov):
		return http.StatusTooManyRequests, ov.RetryAfter
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, 250 * time.Millisecond
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, 0
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Caller-initiated abort, not a server failure.
		return http.StatusRequestTimeout, 0
	default:
		return http.StatusInternalServerError, 0
	}
}

// maxBodyBytes sizes the /v1/infer request-body cap. With a declared input
// interface the bound follows from the largest admissible request: the
// per-item volumes times MaxItems, at a generous ~24 bytes per float of
// JSON text, plus fixed envelope overhead. Without declared shapes a flat
// 64 MiB cap still stops unbounded bodies at the door.
func maxBodyBytes(cfg Config) int64 {
	const (
		perFloat = 24
		envelope = 1 << 20
		fallback = 64 << 20
	)
	if len(cfg.ItemShapes) == 0 {
		return fallback
	}
	var floats int64
	for _, shape := range cfg.ItemShapes {
		per := int64(1)
		for _, d := range shape[1:] {
			per *= int64(d)
		}
		floats += per * int64(cfg.MaxItems)
	}
	return floats*perFloat + envelope
}

func writeErr(w http.ResponseWriter, status int, err error, retry time.Duration) {
	if retry > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(retry.Seconds()))))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), RetryAfter: retry.Seconds()})
}
