package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"mime"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/tensor"
	"repro/internal/wire"
)

// HTTP API types. Tensors travel either as JSON (shape + flat row-major
// data, the compatibility path) or as the binary streaming protocol under
// Content-Type application/x-mvtee-tensor (see internal/wire/public.go for
// the frame layout). Negotiation: the request's Content-Type selects the
// request codec; the response mirrors the request codec unless the Accept
// header names the other one. On the binary path, tenant and priority ride
// in the X-MVTEE-Tenant / X-MVTEE-Priority headers so the body is purely
// tensor frames.

// WireTensor is the JSON tensor encoding.
type WireTensor struct {
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data"`
}

// InferRequest is the POST /v1/infer JSON body.
type InferRequest struct {
	Tenant   string                `json:"tenant,omitempty"`
	Priority string                `json:"priority,omitempty"` // high | normal | low
	Inputs   map[string]WireTensor `json:"inputs"`
}

// InferResponse is the POST /v1/infer JSON success body.
type InferResponse struct {
	ID        uint64                `json:"id"`
	BatchID   uint64                `json:"batch_id"`
	BatchFill int                   `json:"batch_fill"`
	LatencyMS float64               `json:"latency_ms"`
	Outputs   map[string]WireTensor `json:"outputs"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error      string  `json:"error"`
	RetryAfter float64 `json:"retry_after_s,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status   string         `json:"status"` // serving | draining
	Shed     string         `json:"shed"`
	Ladder   []string       `json:"ladder"`
	Queues   map[string]int `json:"queues"`
	Draining bool           `json:"draining"`
	// Protocols lists the /v1/infer content types this server accepts.
	Protocols []string `json:"protocols"`
}

// Request/response header names for the binary path.
const (
	HeaderTenant   = "X-MVTEE-Tenant"
	HeaderPriority = "X-MVTEE-Priority"
)

// Handler serves the front-end HTTP API over s:
//
//	POST /v1/infer  — one inference request (429 + Retry-After on overload),
//	                  JSON or binary per content negotiation
//	GET  /healthz   — serving status, shed level, ladder, queues, protocols
func Handler(s *Server) http.Handler {
	jsonLimit := maxBodyBytes(s.cfg)
	binLimit := wire.MaxRequestSize(s.cfg.ItemShapes, s.cfg.MaxItems)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		binReq, err := isBinary(r.Header.Get("Content-Type"))
		if err != nil {
			writeErr(w, false, http.StatusUnsupportedMediaType, err, 0)
			return
		}
		binResp := respondBinary(r.Header.Get("Accept"), binReq)
		if (binReq || binResp) && s.cfg.DisableBinary {
			writeErr(w, false, http.StatusUnsupportedMediaType,
				fmt.Errorf("binary protocol disabled on this server"), 0)
			return
		}
		s.met.proto(binReq)

		var req Request
		if binReq {
			// Binary requests get a tight body bound: 4 bytes per float32 of
			// the largest admissible request instead of the ~24-bytes-per-
			// float JSON estimate, so legitimate bodies near the limit are
			// not 413ed by a cap sized for text.
			r.Body = http.MaxBytesReader(w, r.Body, binLimit)
			req, err = s.decodeBinary(r)
		} else {
			r.Body = http.MaxBytesReader(w, r.Body, jsonLimit)
			req, err = decodeJSON(r)
		}
		if err != nil {
			status := http.StatusBadRequest
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				status = http.StatusRequestEntityTooLarge
			}
			writeErr(w, binResp, status, err, 0)
			return
		}
		resp, err := s.Infer(r.Context(), req)
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away (or its deadline passed) mid-request;
				// there is no one to answer and it is not a server fault —
				// don't let the abort show up as a 5xx in logs and metrics.
				return
			}
			status, retry := errStatus(err)
			writeErr(w, binResp, status, err, retry)
			return
		}
		if binResp {
			writeBinaryResponse(w, resp)
			return
		}
		out := InferResponse{
			ID:        resp.ID,
			BatchID:   resp.BatchID,
			BatchFill: resp.BatchFill,
			LatencyMS: float64(resp.Latency) / float64(time.Millisecond),
			Outputs:   make(map[string]WireTensor, len(resp.Tensors)),
		}
		for name, t := range resp.Tensors {
			out.Outputs[name] = WireTensor{Shape: t.Shape(), Data: t.Data()}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ladder := s.engine.Ladder()
		h := Health{
			Status:    "serving",
			Shed:      s.Shed().String(),
			Queues:    s.QueueDepths(),
			Draining:  s.Draining(),
			Protocols: []string{"application/json"},
		}
		if !s.cfg.DisableBinary {
			h.Protocols = append(h.Protocols,
				fmt.Sprintf("%s;v=%d", wire.ContentTypeBinary, wire.PubVersion))
		}
		for _, rung := range ladder {
			h.Ladder = append(h.Ladder, rung.String())
		}
		if h.Draining {
			h.Status = "draining"
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h)
	})
	return mux
}

// isBinary classifies a request Content-Type: binary, JSON (the default for
// an absent or unparseable-but-empty header), or an error for anything else.
func isBinary(ct string) (bool, error) {
	if ct == "" {
		return false, nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false, fmt.Errorf("bad Content-Type %q: %w", ct, err)
	}
	switch mt {
	case wire.ContentTypeBinary:
		return true, nil
	case "application/json", "text/json":
		return false, nil
	default:
		return false, fmt.Errorf("unsupported Content-Type %q (want application/json or %s)",
			mt, wire.ContentTypeBinary)
	}
}

// respondBinary picks the response codec: an Accept header explicitly
// naming one of the two content types wins; otherwise the response mirrors
// the request codec.
func respondBinary(accept string, requestWasBinary bool) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil {
			continue
		}
		switch mt {
		case wire.ContentTypeBinary:
			return true
		case "application/json":
			return false
		}
	}
	return requestWasBinary
}

// checkWireTensor is the shared front-door tensor validator: both content
// types funnel every (shape, data length) pair through it, so the JSON and
// binary paths reject exactly the same malformed tensors with a 400 instead
// of letting them reach — and under Halt, poison — the engine.
func checkWireTensor(name string, shape []int, dataLen int) (int, error) {
	vol, err := wire.CheckPublicShape(shape)
	if err != nil {
		return 0, fmt.Errorf("%w: input %q: %v", ErrBadRequest, name, err)
	}
	if dataLen != vol {
		return 0, fmt.Errorf("%w: input %q: data length %d != volume %d of %v",
			ErrBadRequest, name, dataLen, vol, shape)
	}
	return vol, nil
}

// decodeJSON decodes the JSON request body into a serve.Request.
func decodeJSON(r *http.Request) (Request, error) {
	var jr InferRequest
	if err := json.NewDecoder(r.Body).Decode(&jr); err != nil {
		return Request{}, err
	}
	prio, err := ParsePriority(jr.Priority)
	if err != nil {
		return Request{}, err
	}
	inputs := make(map[string]*tensor.Tensor, len(jr.Inputs))
	for name, wt := range jr.Inputs {
		if _, err := checkWireTensor(name, wt.Shape, len(wt.Data)); err != nil {
			return Request{}, err
		}
		t, err := tensor.FromSlice(wt.Data, wt.Shape...)
		if err != nil {
			return Request{}, fmt.Errorf("%w: input %q: %v", ErrBadRequest, name, err)
		}
		inputs[name] = t
	}
	return Request{Tenant: jr.Tenant, Priority: prio, Inputs: inputs}, nil
}

// decodeBinary decodes a binary request body, streaming payloads into
// pooled scratch. Shapes are vetted against the declared input interface
// and MaxItems before any payload byte of the frame is read, so a hostile
// frame costs its header, not its body.
func (s *Server) decodeBinary(r *http.Request) (Request, error) {
	prio, err := ParsePriority(r.Header.Get(HeaderPriority))
	if err != nil {
		return Request{}, err
	}
	limit := wire.MaxRequestSize(s.cfg.ItemShapes, s.cfg.MaxItems)
	validate := func(name string, shape []int) error {
		// A declared payload that alone exceeds the body cap can never arrive
		// intact; refusing it here (before the decoder allocates the backing
		// array) keeps a 30-byte hostile header from forcing a multi-GiB
		// allocation. Same limit MaxBytesReader enforces, same 413.
		if vol, err := wire.CheckPublicShape(shape); err == nil && 4*int64(vol) > limit {
			return &http.MaxBytesError{Limit: limit}
		}
		if shape[0] > s.cfg.MaxItems {
			return fmt.Errorf("%w: input %q item count %d exceeds max %d",
				ErrBadRequest, name, shape[0], s.cfg.MaxItems)
		}
		if s.cfg.ItemShapes == nil {
			return nil
		}
		want, ok := s.cfg.ItemShapes[name]
		if !ok {
			return fmt.Errorf("%w: unknown input %q", ErrBadRequest, name)
		}
		if len(shape) != len(want) {
			return fmt.Errorf("%w: input %q rank %d, model declares %v", ErrBadRequest, name, len(shape), want)
		}
		for i := 1; i < len(want); i++ {
			if shape[i] != want[i] {
				return fmt.Errorf("%w: input %q shape %v, model declares %v (batch axis excluded)",
					ErrBadRequest, name, shape, want)
			}
		}
		return nil
	}
	inputs, err := wire.DecodeRequest(r.Body, validate)
	if err != nil {
		return Request{}, err
	}
	return Request{Tenant: r.Header.Get(HeaderTenant), Priority: prio, Inputs: inputs}, nil
}

// writeBinaryResponse streams resp back as binary frames: meta first, then
// one frame per output tensor in sorted name order, then the end frame. The
// writer flushes after the meta and after every tensor frame, so output
// bytes leave the server as soon as the request's micro-batch has cleared
// the monitor quorum — nothing waits on a whole-response buffer.
func writeBinaryResponse(w http.ResponseWriter, resp Response) {
	names := make([]string, 0, len(resp.Tensors))
	for name := range resp.Tensors {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	flusher, _ := w.(http.Flusher)
	if err := wire.WriteResponseHeader(w, wire.PubMeta{
		ID:        resp.ID,
		BatchID:   resp.BatchID,
		BatchFill: resp.BatchFill,
		Latency:   resp.Latency,
		Tensors:   len(names),
	}); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	for _, name := range names {
		if err := wire.WriteTensorFrame(w, name, resp.Tensors[name]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = wire.WriteEndFrame(w)
}

// errStatus maps serving errors onto HTTP semantics: overload and draining
// are retryable (429/503 with Retry-After), bad requests are 400, the rest
// are internal.
func errStatus(err error) (status int, retryAfter time.Duration) {
	var ov *OverloadError
	switch {
	case errors.As(err, &ov):
		return http.StatusTooManyRequests, ov.RetryAfter
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, 250 * time.Millisecond
	case errors.Is(err, ErrBadRequest), errors.Is(err, wire.ErrPubDecode):
		return http.StatusBadRequest, 0
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Caller-initiated abort, not a server failure.
		return http.StatusRequestTimeout, 0
	default:
		return http.StatusInternalServerError, 0
	}
}

// maxBodyBytes sizes the /v1/infer JSON request-body cap. With a declared
// input interface the bound follows from the largest admissible request:
// the per-item volumes times MaxItems, at a generous ~24 bytes per float of
// JSON text, plus fixed envelope overhead. Without declared shapes a flat
// 64 MiB cap still stops unbounded bodies at the door. (Binary bodies use
// wire.MaxRequestSize instead — exact 4-byte floats, tight framing.)
func maxBodyBytes(cfg Config) int64 {
	const (
		perFloat = 24
		envelope = 1 << 20
		fallback = 64 << 20
	)
	if len(cfg.ItemShapes) == 0 {
		return fallback
	}
	var floats int64
	for _, shape := range cfg.ItemShapes {
		per := int64(1)
		for _, d := range shape[1:] {
			per *= int64(d)
		}
		floats += per * int64(cfg.MaxItems)
	}
	return floats*perFloat + envelope
}

// writeErr answers a failed request in the negotiated codec: the JSON error
// envelope, or — on the binary path — one FrameError carrying the same
// status, message and retry-after hint, so binary clients never have to
// parse JSON. The Retry-After header is set either way.
func writeErr(w http.ResponseWriter, binary bool, status int, err error, retry time.Duration) {
	if retry > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(retry.Seconds()))))
	}
	if binary {
		w.Header().Set("Content-Type", wire.ContentTypeBinary)
		w.WriteHeader(status)
		_ = wire.WriteErrorFrame(w, status, retry, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), RetryAfter: retry.Seconds()})
}
