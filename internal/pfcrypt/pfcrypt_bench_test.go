package pfcrypt

import (
	"fmt"
	"testing"
)

// BenchmarkProtectedFiles measures the encrypted-filesystem costs paid once
// per variant bootstrap (manifest, spec and graph decryption).
func BenchmarkProtectedFiles(b *testing.B) {
	kdk, err := NewKDK()
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{4 << 10, 1 << 20} {
		plain := make([]byte, size)
		b.Run(fmt.Sprintf("encrypt/%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := Encrypt(kdk, "pool/x/graph.pf", plain); err != nil {
					b.Fatal(err)
				}
			}
		})
		ct, err := Encrypt(kdk, "pool/x/graph.pf", plain)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("decrypt/%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := Decrypt(kdk, "pool/x/graph.pf", ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
