package pfcrypt

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRoundtrip(t *testing.T) {
	kdk, err := NewKDK()
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("variant graph bytes")
	ct, err := Encrypt(kdk, "pool/p0/spec/graph.pf", plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, plain) {
		t.Fatal("ciphertext contains plaintext")
	}
	got, err := Decrypt(kdk, "pool/p0/spec/graph.pf", ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatalf("roundtrip mismatch: %q", got)
	}
}

func TestWrongKeyFails(t *testing.T) {
	k1, _ := NewKDK()
	k2, _ := NewKDK()
	ct, err := Encrypt(k1, "f", []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(k2, "f", ct); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong key: got %v, want ErrAuth", err)
	}
}

func TestWrongPathFails(t *testing.T) {
	kdk, _ := NewKDK()
	ct, err := Encrypt(kdk, "a/b", []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// Path is authenticated: an attacker cannot swap encrypted files between
	// locations (cross-variant file confusion).
	if _, err := Decrypt(kdk, "a/c", ct); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong path: got %v, want ErrAuth", err)
	}
}

func TestTamperDetected(t *testing.T) {
	kdk, _ := NewKDK()
	ct, err := Encrypt(kdk, "f", bytes.Repeat([]byte{7}, 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{5, len(ct) / 2, len(ct) - 1} {
		mod := append([]byte(nil), ct...)
		mod[pos] ^= 0x01
		if _, err := Decrypt(kdk, "f", mod); err == nil {
			t.Errorf("tamper at %d not detected", pos)
		}
	}
}

func TestMalformedBlob(t *testing.T) {
	kdk, _ := NewKDK()
	for _, blob := range [][]byte{nil, []byte("x"), []byte("NOPE this is not a protected file at all")} {
		if _, err := Decrypt(kdk, "f", blob); err == nil {
			t.Errorf("malformed blob %q accepted", blob)
		}
	}
}

func TestPerFileKeysDiffer(t *testing.T) {
	// Same KDK, same plaintext: ciphertexts must differ (one-time file keys
	// and random nonces), so ciphertext equality leaks nothing.
	kdk, _ := NewKDK()
	a, _ := Encrypt(kdk, "f", []byte("same"))
	b, _ := Encrypt(kdk, "f", []byte("same"))
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions of the same file are identical")
	}
}

func TestEmptyPlaintext(t *testing.T) {
	kdk, _ := NewKDK()
	ct, err := Encrypt(kdk, "empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(kdk, "empty", ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes, want 0", len(got))
	}
}

// TestQuickRoundtrip property-tests encrypt/decrypt over random payloads and
// paths.
func TestQuickRoundtrip(t *testing.T) {
	kdk, _ := NewKDK()
	f := func(seed uint64, n uint16, path string) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		plain := make([]byte, int(n)%4096)
		for i := range plain {
			plain[i] = byte(rng.IntN(256))
		}
		ct, err := Encrypt(kdk, path, plain)
		if err != nil {
			return false
		}
		got, err := Decrypt(kdk, path, ct)
		return err == nil && bytes.Equal(got, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
