// Package pfcrypt is the protected-files utility of the MVTEE TEE OS — the
// analogue of Gramine's gramine-sgx-pf-crypt tool (§5.1). Files are encrypted
// with AES-GCM-256 under per-file one-time keys; the caller's variant-specific
// key acts only as a key-derivation key that wraps the file keys. As §6.5
// notes, this hierarchy bounds the ciphertext volume under any single key and
// eases key rotation.
package pfcrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hkdf"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

const (
	magic    = "MVPF"
	saltLen  = 16
	keyLen   = 32
	nonceLen = 12
)

// Errors.
var (
	ErrFormat = errors.New("pfcrypt: malformed protected file")
	ErrAuth   = errors.New("pfcrypt: authentication failed (wrong key or tampered file)")
)

// KDK is a key-derivation key. In MVTEE each variant receives its own KDK
// from the monitor during bootstrap.
type KDK []byte

// NewKDK generates a fresh random key-derivation key.
func NewKDK() (KDK, error) {
	k := make([]byte, keyLen)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("pfcrypt: generate KDK: %w", err)
	}
	return k, nil
}

func wrapKey(kdk KDK, salt []byte) ([]byte, error) {
	return hkdf.Key(sha256.New, kdk, salt, "mvtee-pf-wrap", keyLen)
}

func newGCM(key []byte) (cipher.AEAD, error) {
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(blk)
}

// Encrypt protects plaintext under the KDK. Layout:
//
//	magic | salt | wrapNonce | wrappedFileKey | dataNonce | ciphertext
//
// where wrappedFileKey is the random one-time file key sealed under
// HKDF(kdk, salt), and ciphertext is AES-GCM-256 of the plaintext under the
// file key with the path as additional authenticated data.
func Encrypt(kdk KDK, path string, plaintext []byte) ([]byte, error) {
	salt := make([]byte, saltLen)
	fileKey := make([]byte, keyLen)
	if _, err := rand.Read(salt); err != nil {
		return nil, fmt.Errorf("pfcrypt: %w", err)
	}
	if _, err := rand.Read(fileKey); err != nil {
		return nil, fmt.Errorf("pfcrypt: %w", err)
	}
	wk, err := wrapKey(kdk, salt)
	if err != nil {
		return nil, fmt.Errorf("pfcrypt: derive wrap key: %w", err)
	}
	wgcm, err := newGCM(wk)
	if err != nil {
		return nil, fmt.Errorf("pfcrypt: %w", err)
	}
	wrapNonce := make([]byte, nonceLen)
	if _, err := rand.Read(wrapNonce); err != nil {
		return nil, fmt.Errorf("pfcrypt: %w", err)
	}
	wrapped := wgcm.Seal(nil, wrapNonce, fileKey, []byte("filekey/"+path))

	fgcm, err := newGCM(fileKey)
	if err != nil {
		return nil, fmt.Errorf("pfcrypt: %w", err)
	}
	dataNonce := make([]byte, nonceLen)
	if _, err := rand.Read(dataNonce); err != nil {
		return nil, fmt.Errorf("pfcrypt: %w", err)
	}
	ct := fgcm.Seal(nil, dataNonce, plaintext, []byte("data/"+path))

	out := make([]byte, 0, len(magic)+saltLen+nonceLen+len(wrapped)+1+nonceLen+len(ct))
	out = append(out, magic...)
	out = append(out, salt...)
	out = append(out, wrapNonce...)
	out = append(out, byte(len(wrapped)))
	out = append(out, wrapped...)
	out = append(out, dataNonce...)
	out = append(out, ct...)
	return out, nil
}

// Decrypt recovers the plaintext of a protected file. Path must match the
// path used at encryption time (it is authenticated).
func Decrypt(kdk KDK, path string, blob []byte) ([]byte, error) {
	if len(blob) < len(magic)+saltLen+nonceLen+1 || string(blob[:len(magic)]) != magic {
		return nil, ErrFormat
	}
	p := blob[len(magic):]
	salt, p := p[:saltLen], p[saltLen:]
	wrapNonce, p := p[:nonceLen], p[nonceLen:]
	wlen := int(p[0])
	p = p[1:]
	if len(p) < wlen+nonceLen {
		return nil, ErrFormat
	}
	wrapped, p := p[:wlen], p[wlen:]
	dataNonce, ct := p[:nonceLen], p[nonceLen:]

	wk, err := wrapKey(kdk, salt)
	if err != nil {
		return nil, fmt.Errorf("pfcrypt: derive wrap key: %w", err)
	}
	wgcm, err := newGCM(wk)
	if err != nil {
		return nil, fmt.Errorf("pfcrypt: %w", err)
	}
	fileKey, err := wgcm.Open(nil, wrapNonce, wrapped, []byte("filekey/"+path))
	if err != nil {
		return nil, ErrAuth
	}
	fgcm, err := newGCM(fileKey)
	if err != nil {
		return nil, fmt.Errorf("pfcrypt: %w", err)
	}
	pt, err := fgcm.Open(nil, dataNonce, ct, []byte("data/"+path))
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}
