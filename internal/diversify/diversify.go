// Package diversify generates MVTEE's inference variants with multi-level
// diversification (§4.2): model-graph-level transformations (dummy operators,
// operator decomposition/fusion, channel manipulation, selective
// optimization, commutative rewriting), inference-instance-level choices
// (runtime family, BLAS backend, convolution algorithm, scheduling), software
// hardening levels (bounds checks, sanitizer, ASLR, error handling) and
// TEE-level placement (SGX vs TDX). A Spec describes one variant recipe in a
// JSON-serializable form; Apply materializes it against a partition subgraph;
// BuildPool expands a recipe list across every partition into the offline
// variant pool of Figure 2.
package diversify

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"

	"repro/internal/blas"
	"repro/internal/enclave"
	"repro/internal/graph"
	"repro/internal/infer"
	"repro/internal/ops"
	"repro/internal/rewrite"
)

// TransformKind enumerates the graph-level transformations.
type TransformKind string

// Graph-level transformation kinds (§4.2 list).
const (
	TFuse           TransformKind = "fuse"            // operator fusion (Conv+BN, Conv+activation)
	TSelectiveOpt   TransformKind = "selective-opt"   // probabilistic fusion subset
	TDummyOps       TransformKind = "dummy-ops"       // insert identity / add-zero operators
	TDecomposeGemm  TransformKind = "decompose-gemm"  // Gemm -> MatMul + Add
	TDecomposeBN    TransformKind = "decompose-bn"    // BatchNorm -> Mul + Add
	TShuffleChannel TransformKind = "shuffle-channel" // permute conv channels + compensate
	TReorderAdd     TransformKind = "reorder-add"     // commutative input reordering
)

// GraphTransform is one parameterized transformation step.
type GraphTransform struct {
	Kind TransformKind `json:"kind"`
	// N parameterizes count-like transforms (dummy ops, shuffles).
	N int `json:"n,omitempty"`
	// P parameterizes probability-like transforms (selective optimization).
	P float64 `json:"p,omitempty"`
}

// Spec is one variant recipe: a named combination of graph-level transforms
// and an inference-instance configuration, plus TEE placement. Specs are the
// JSON "variant configurations" consumed by the offline MVX tool (§5.1).
type Spec struct {
	Name string `json:"name"`
	// Graph-level.
	Transforms []GraphTransform `json:"transforms,omitempty"`
	// Instance-level.
	Runtime     string `json:"runtime"`     // "interp" (ORT-like) | "planned" (TVM-like)
	BLAS        string `json:"blas"`        // "naive" | "blocked" | "packed"
	ConvAlgo    string `json:"conv_algo"`   // "direct" | "im2col"
	Parallelism int    `json:"parallelism"` // intra-op threads
	OptLevel    int    `json:"opt_level"`   // planned-runtime optimization level
	// Software hardening level.
	CheckFinite  bool `json:"check_finite,omitempty"`
	BoundsCheck  bool `json:"bounds_check,omitempty"`
	Sanitizer    bool `json:"sanitizer,omitempty"`
	ASLR         bool `json:"aslr,omitempty"`
	StackProtect bool `json:"stack_protect,omitempty"`
	// TEE level.
	TEE string `json:"tee,omitempty"` // "sgx1" | "sgx2" | "tdx"
	// Seed drives the randomized transforms (deterministic per spec).
	Seed uint64 `json:"seed,omitempty"`
}

// RuntimeConfig resolves the instance-level portion of the spec into an
// executor configuration.
func (s Spec) RuntimeConfig() (infer.Config, error) {
	cfg := infer.Config{
		Parallelism:  s.Parallelism,
		OptLevel:     s.OptLevel,
		CheckFinite:  s.CheckFinite,
		BoundsCheck:  s.BoundsCheck,
		Sanitizer:    s.Sanitizer,
		ASLR:         s.ASLR,
		StackProtect: s.StackProtect,
	}
	switch s.Runtime {
	case "", "interp":
		cfg.Runtime = infer.Interp
	case "planned":
		cfg.Runtime = infer.Planned
	default:
		return cfg, fmt.Errorf("diversify: unknown runtime %q", s.Runtime)
	}
	switch s.BLAS {
	case "", "naive":
		cfg.BLAS = blas.Naive
	case "blocked":
		cfg.BLAS = blas.Blocked
	case "packed":
		cfg.BLAS = blas.Packed
	default:
		return cfg, fmt.Errorf("diversify: unknown blas %q", s.BLAS)
	}
	switch s.ConvAlgo {
	case "", "direct":
		cfg.ConvAlgo = ops.ConvDirect
	case "im2col":
		cfg.ConvAlgo = ops.ConvIm2Col
	case "winograd":
		cfg.ConvAlgo = ops.ConvWinograd
	default:
		return cfg, fmt.Errorf("diversify: unknown conv algo %q", s.ConvAlgo)
	}
	return cfg, nil
}

// TEEType resolves the TEE placement (default SGX2).
func (s Spec) TEEType() (enclave.TEEType, error) {
	switch s.TEE {
	case "", "sgx2":
		return enclave.SGX2, nil
	case "sgx1":
		return enclave.SGX1, nil
	case "tdx":
		return enclave.TDX, nil
	default:
		return 0, fmt.Errorf("diversify: unknown TEE %q", s.TEE)
	}
}

// Marshal renders the spec as its JSON configuration document.
func (s Spec) Marshal() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// ParseSpec parses a JSON variant configuration.
func ParseSpec(b []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return Spec{}, fmt.Errorf("diversify: parse spec: %w", err)
	}
	if _, err := s.RuntimeConfig(); err != nil {
		return Spec{}, err
	}
	if _, err := s.TEEType(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Apply materializes the spec's graph-level transforms against a clone of g,
// returning the diversified graph. The result is validated; transforms that
// find no applicable site are no-ops.
func Apply(s Spec, g *graph.Graph) (*graph.Graph, error) {
	out := g.Clone()
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewPCG(seed, 0xd1ce))
	for _, tr := range s.Transforms {
		var t rewrite.Transform
		switch tr.Kind {
		case TFuse:
			t = rewrite.Fuse()
		case TSelectiveOpt:
			p := tr.P
			if p == 0 {
				p = 0.5
			}
			t = rewrite.SelectiveOptimize(p)
		case TDummyOps:
			n := tr.N
			if n == 0 {
				n = 3
			}
			t = rewrite.InsertDummyOps(n)
		case TDecomposeGemm:
			t = rewrite.DecomposeGemm()
		case TDecomposeBN:
			t = rewrite.DecomposeBatchNorm()
		case TShuffleChannel:
			n := tr.N
			if n == 0 {
				n = 2
			}
			t = rewrite.ShuffleChannels(n)
		case TReorderAdd:
			t = rewrite.ReorderCommutative()
		default:
			return nil, fmt.Errorf("diversify: unknown transform %q", tr.Kind)
		}
		if err := t(out, rng); err != nil {
			return nil, fmt.Errorf("diversify: transform %q: %w", tr.Kind, err)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("diversify: %q produced invalid graph: %w", s.Name, err)
	}
	return out, nil
}

// Variant is one materialized pool entry: a diversified partition subgraph
// plus its spec.
type Variant struct {
	Spec      Spec
	Partition int
	Graph     *graph.Graph
}

// Pool is the offline-generated variant pool: for each partition index, one
// variant per spec (Figure 2 steps 1–2).
type Pool struct {
	Specs    []Spec
	Variants [][]Variant // [partition][spec]
}

// BuildPool applies every spec to every partition subgraph.
func BuildPool(parts []*graph.Graph, specs []Spec) (*Pool, error) {
	p := &Pool{Specs: specs, Variants: make([][]Variant, len(parts))}
	for pi, pg := range parts {
		for _, s := range specs {
			dg, err := Apply(s, pg)
			if err != nil {
				return nil, fmt.Errorf("diversify: partition %d: %w", pi, err)
			}
			p.Variants[pi] = append(p.Variants[pi], Variant{Spec: s, Partition: pi, Graph: dg})
		}
	}
	return p, nil
}

// Lookup returns the variant for (partition, spec name).
func (p *Pool) Lookup(partition int, specName string) (*Variant, error) {
	if partition < 0 || partition >= len(p.Variants) {
		return nil, fmt.Errorf("diversify: partition %d out of range", partition)
	}
	for i := range p.Variants[partition] {
		if p.Variants[partition][i].Spec.Name == specName {
			return &p.Variants[partition][i], nil
		}
	}
	return nil, fmt.Errorf("diversify: no variant %q for partition %d", specName, partition)
}

// --- preset recipe sets --------------------------------------------------------

// ReplicaSpec is the identical-variant recipe used by the fundamental
// performance evaluations (§6.1: "identical/replicated variants running on
// ONNX runtime to minimize execution time variations").
func ReplicaSpec(name string) Spec {
	return Spec{Name: name, Runtime: "interp", BLAS: "naive", ConvAlgo: "direct"}
}

// RealSetupSpecs is the diversified recipe set of the real-setup evaluations
// (§6.4): ORT-like and TVM-like runtimes over distinct BLAS backends and
// kernel algorithms, with graph-level transforms on top.
func RealSetupSpecs() []Spec {
	return []Spec{
		{
			Name: "ort-cpu", Runtime: "interp", BLAS: "blocked", ConvAlgo: "im2col",
			Transforms: []GraphTransform{{Kind: TFuse}},
			Seed:       101,
		},
		{
			Name: "ort-altep", Runtime: "interp", BLAS: "naive", ConvAlgo: "im2col",
			Transforms:  []GraphTransform{{Kind: TReorderAdd}, {Kind: TSelectiveOpt, P: 0.7}},
			CheckFinite: true,
			Seed:        202,
		},
		{
			Name: "tvm-graph", Runtime: "planned", BLAS: "packed", ConvAlgo: "im2col", OptLevel: 1,
			Transforms: []GraphTransform{{Kind: TDummyOps, N: 2}},
			ASLR:       true,
			Seed:       303,
		},
	}
}

// HeavyTVMSpec is the deliberately expensive, heavily diversified TVM-like
// recipe that lags the others — the straggler of the asynchronous
// cross-validation evaluation (§6.4, Figure 13).
func HeavyTVMSpec() Spec {
	return Spec{
		Name: "tvm-heavy", Runtime: "planned", BLAS: "packed", ConvAlgo: "direct", OptLevel: 0,
		Transforms: []GraphTransform{
			{Kind: TDecomposeBN},
			{Kind: TDecomposeGemm},
			{Kind: TDummyOps, N: 8},
			{Kind: TShuffleChannel, N: 3},
			{Kind: TReorderAdd},
		},
		Sanitizer:   true,
		CheckFinite: true,
		Seed:        404,
	}
}

// HardenedSpecs enumerates the software-hardening variant family of the
// security analysis (Table 1): different runtime, bounds checking, sanitizer,
// ASLR, error handling, and a compiler-diversity stand-in.
func HardenedSpecs() []Spec {
	return []Spec{
		{Name: "different-rt", Runtime: "planned", BLAS: "blocked", ConvAlgo: "im2col", OptLevel: 1, Seed: 11},
		{Name: "bounds-check", Runtime: "interp", BLAS: "naive", ConvAlgo: "direct", BoundsCheck: true, Seed: 12},
		{Name: "sanitizer", Runtime: "interp", BLAS: "naive", ConvAlgo: "direct", Sanitizer: true, Seed: 13},
		{Name: "aslr", Runtime: "interp", BLAS: "naive", ConvAlgo: "direct", ASLR: true, Seed: 14},
		{Name: "error-handling", Runtime: "interp", BLAS: "naive", ConvAlgo: "direct", CheckFinite: true, Seed: 15},
		{Name: "compiler", Runtime: "planned", BLAS: "packed", ConvAlgo: "winograd", StackProtect: true, OptLevel: 1, Seed: 16},
	}
}
