package diversify

import (
	"testing"
	"time"

	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/tensor"
)

func TestSpecSpeedSpread(t *testing.T) {
	g := models.MustBuild("resnet-50", models.Config{})
	in := tensor.New(1, 3, 32, 32)
	for i := range in.Data() {
		in.Data()[i] = 0.3
	}
	for _, s := range append(RealSetupSpecs(), HeavyTVMSpec()) {
		dg, err := Apply(s, g)
		if err != nil {
			t.Fatal(err)
		}
		rc, _ := s.RuntimeConfig()
		ex, err := infer.New(dg, rc)
		if err != nil {
			t.Fatal(err)
		}
		ex.Run(map[string]*tensor.Tensor{"image": in})
		best := time.Hour
		for i := 0; i < 3; i++ {
			st := time.Now()
			ex.Run(map[string]*tensor.Tensor{"image": in})
			if e := time.Since(st); e < best {
				best = e
			}
		}
		t.Logf("%-12s %8.2f ms", s.Name, float64(best.Microseconds())/1000)
	}
}
