package diversify

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/partition"
	"repro/internal/tensor"
)

func TestSpecJSONRoundtrip(t *testing.T) {
	s := Spec{
		Name:       "x",
		Transforms: []GraphTransform{{Kind: TDummyOps, N: 3}, {Kind: TSelectiveOpt, P: 0.5}},
		Runtime:    "planned", BLAS: "packed", ConvAlgo: "im2col",
		Parallelism: 2, OptLevel: 1,
		CheckFinite: true, ASLR: true, TEE: "tdx", Seed: 9,
	}
	b, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || len(got.Transforms) != 2 || got.Runtime != "planned" ||
		!got.CheckFinite || got.TEE != "tdx" || got.Seed != 9 {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestParseSpecRejectsBadFields(t *testing.T) {
	cases := []string{
		`{"runtime":"jvm"}`,
		`{"blas":"cuda"}`,
		`{"conv_algo":"fft"}`,
		`{"tee":"sev"}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ParseSpec([]byte(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestRuntimeConfigResolution(t *testing.T) {
	cfg, err := Spec{}.RuntimeConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Runtime != infer.Interp {
		t.Fatalf("default runtime = %v", cfg.Runtime)
	}
	cfg, err = Spec{Runtime: "planned", BLAS: "blocked", ConvAlgo: "im2col", OptLevel: 2}.RuntimeConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Runtime != infer.Planned || cfg.OptLevel != 2 {
		t.Fatalf("resolved = %+v", cfg)
	}
}

func TestApplyUnknownTransform(t *testing.T) {
	g := models.MustBuild("mnasnet", models.Config{})
	if _, err := Apply(Spec{Name: "bad", Transforms: []GraphTransform{{Kind: "quantum"}}}, g); err == nil {
		t.Fatal("unknown transform accepted")
	}
}

func TestApplyDeterministicPerSeed(t *testing.T) {
	g := models.MustBuild("resnet-50", models.Config{Depth: 0.34})
	s := Spec{Name: "d", Seed: 5, Transforms: []GraphTransform{{Kind: TDummyOps, N: 4}, {Kind: TShuffleChannel, N: 2}}}
	a, err := Apply(s, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Apply(s, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("same seed produced different structures")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Name != b.Nodes[i].Name {
			t.Fatal("same seed produced different node names")
		}
	}
}

func TestApplyLeavesOriginalIntact(t *testing.T) {
	g := models.MustBuild("mnasnet", models.Config{})
	before := len(g.Nodes)
	if _, err := Apply(Spec{Name: "d", Transforms: []GraphTransform{{Kind: TDummyOps, N: 5}}}, g); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != before {
		t.Fatal("Apply mutated the input graph")
	}
}

// TestPoolVariantsEquivalentOnPartitions builds the pool over real partition
// subgraphs and verifies every diversified variant computes the same
// function as the undiversified subgraph.
func TestPoolVariantsEquivalentOnPartitions(t *testing.T) {
	g := models.MustBuild("googlenet", models.Config{})
	p, err := partition.NewPartitioner(g)
	if err != nil {
		t.Fatal(err)
	}
	set, err := p.Partition(partition.Options{Target: 3})
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*graph.Graph, 3)
	for i := range subs {
		subs[i], err = p.Extract(set, i)
		if err != nil {
			t.Fatal(err)
		}
	}
	specs := append(RealSetupSpecs(), HeavyTVMSpec())
	pool, err := BuildPool(subs, specs)
	if err != nil {
		t.Fatal(err)
	}

	// Feed each partition with a reference forward pass.
	values := map[string]*tensor.Tensor{}
	in := tensor.New(1, 3, 32, 32)
	for i := range in.Data() {
		in.Data()[i] = float32(i%11)/11 - 0.5
	}
	values["image"] = in
	for pi, sub := range subs {
		ins := map[string]*tensor.Tensor{}
		for _, vi := range sub.Inputs {
			ins[vi.Name] = values[vi.Name]
		}
		ref, err := infer.New(sub, infer.Config{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Run(ins)
		if err != nil {
			t.Fatal(err)
		}
		for name, tt := range want {
			values[name] = tt
		}
		for _, v := range pool.Variants[pi] {
			rc, err := v.Spec.RuntimeConfig()
			if err != nil {
				t.Fatal(err)
			}
			ex, err := infer.New(v.Graph, rc)
			if err != nil {
				t.Fatalf("p%d %s: %v", pi, v.Spec.Name, err)
			}
			got, err := ex.Run(ins)
			if err != nil {
				t.Fatalf("p%d %s: %v", pi, v.Spec.Name, err)
			}
			for name := range want {
				if d := maxRel(got[name], want[name]); d > 2e-2 {
					t.Errorf("p%d %s: output %q deviates by %g", pi, v.Spec.Name, name, d)
				}
			}
		}
	}
}

func maxRel(a, b *tensor.Tensor) float64 {
	var worst float64
	for i := range a.Data() {
		d := math.Abs(float64(a.Data()[i]) - float64(b.Data()[i]))
		den := math.Abs(float64(b.Data()[i])) + 1e-5
		if r := d / den; r > worst {
			worst = r
		}
	}
	return worst
}

func TestPoolLookup(t *testing.T) {
	g := models.MustBuild("mnasnet", models.Config{})
	p, _ := partition.NewPartitioner(g)
	set, _ := p.Partition(partition.Options{Target: 2})
	subs := make([]*graph.Graph, 2)
	for i := range subs {
		subs[i], _ = p.Extract(set, i)
	}
	pool, err := BuildPool(subs, []Spec{ReplicaSpec("r")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Lookup(0, "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Lookup(0, "nope"); err == nil {
		t.Fatal("unknown spec found")
	}
	if _, err := pool.Lookup(9, "r"); err == nil {
		t.Fatal("out-of-range partition found")
	}
}

func TestPresetSpecsAreValid(t *testing.T) {
	all := append(RealSetupSpecs(), HeavyTVMSpec(), ReplicaSpec("r"))
	all = append(all, HardenedSpecs()...)
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || seen[s.Name] {
			t.Errorf("spec name %q empty or duplicated", s.Name)
		}
		seen[s.Name] = true
		if _, err := s.RuntimeConfig(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if _, err := s.TEEType(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}
