package monitor

import (
	"testing"

	"repro/internal/telemetry"
)

// traceEngineConfig wires a private registry and tracer so assertions are
// isolated from other tests sharing the process defaults.
func traceEngineConfig(t *testing.T, nVariants int) (EngineConfig, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(1024)
	s0 := make([]*Handle, nVariants)
	s1 := make([]*Handle, nVariants)
	for i := 0; i < nVariants; i++ {
		v0 := &fakeVariant{id: "s0", behave: doubler(0)}
		v1 := &fakeVariant{id: "s1", behave: incrementer()}
		s0[i] = v0.start(t, 0)
		s1[i] = v1.start(t, 1)
	}
	cfg := twoStageConfig(s0, s1)
	cfg.Metrics = reg
	cfg.Tracer = tr
	return cfg, reg, tr
}

// TestBatchTracePropagation runs batches through a two-stage pipeline and
// checks the tentpole tracing invariant: every span recorded for one batch —
// dispatch, per-variant send, gather, vote, forward, and the enclosing batch
// span — carries the same nonzero TraceID, and distinct batches carry
// distinct TraceIDs.
func TestBatchTracePropagation(t *testing.T) {
	cfg, reg, tr := traceEngineConfig(t, 3)
	e := buildEngine(t, cfg)

	const batches = 3
	for i := 0; i < batches; i++ {
		if _, err := e.Infer(input(float32(i + 1))); err != nil {
			t.Fatal(err)
		}
	}

	spans := tr.Snapshot()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	traceOf := make(map[uint64]uint64) // batch ID -> trace
	names := make(map[uint64]map[string]int)
	for _, s := range spans {
		if s.Trace == 0 {
			t.Fatalf("span %+v has zero trace", s)
		}
		if prev, ok := traceOf[s.Batch]; ok && prev != s.Trace {
			t.Fatalf("batch %d spans carry two traces: %d and %d", s.Batch, prev, s.Trace)
		}
		traceOf[s.Batch] = s.Trace
		if names[s.Batch] == nil {
			names[s.Batch] = make(map[string]int)
		}
		names[s.Batch][s.Name]++
	}
	if len(traceOf) != batches {
		t.Fatalf("spans cover %d batches, want %d", len(traceOf), batches)
	}
	seen := make(map[uint64]bool)
	for b, tr := range traceOf {
		if seen[tr] {
			t.Fatalf("trace %d reused across batches", tr)
		}
		seen[tr] = true
		// Two stages, three variants: each batch must show the full span
		// vocabulary, with one send per variant per stage.
		for name, want := range map[string]int{
			"batch": 1, "dispatch": 2, "send": 6, "gather": 2, "vote": 2, "forward": 2,
		} {
			if got := names[b][name]; got != want {
				t.Errorf("batch %d: %d %q spans, want %d (have %v)", b, got, name, want, names[b])
			}
		}
	}

	// The metrics side of the same run: the batch counter and latency
	// histogram must count exactly the batches executed.
	var counted, histCount uint64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case telemetry.MetricEngineBatches:
			counted = uint64(m.Value)
		case telemetry.MetricEngineBatchNs:
			histCount = m.Count
		}
	}
	if counted != batches || histCount != batches {
		t.Fatalf("batches counter = %d, latency count = %d, want %d", counted, histCount, batches)
	}
}

// TestTraceDisabledMintsNothing verifies the zero-cost-when-disabled
// contract's tracing half: with telemetry off, batches carry trace 0 and no
// spans are recorded.
func TestTraceDisabledMintsNothing(t *testing.T) {
	telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(true)
	cfg, _, tr := traceEngineConfig(t, 1)
	e := buildEngine(t, cfg)
	if _, err := e.Infer(input(2)); err != nil {
		t.Fatal(err)
	}
	if got := tr.Total(); got != 0 {
		t.Fatalf("%d spans recorded while disabled", got)
	}
}

// TestWarmAllocsPin pins the observability overhead on the warm hot path:
// a fully instrumented dispatch→gather→deliver cycle must not allocate more
// than the identical cycle with telemetry disabled. All telemetry recording
// goes through pre-registered atomics, a preallocated span ring and a
// preallocated event ring, so the deltas should be zero; the pin allows a
// tiny slack for runtime noise (background sweeps, channel growth).
func TestWarmAllocsPin(t *testing.T) {
	measure := func(enabled bool) float64 {
		cfg, _, _ := traceEngineConfig(t, 1)
		e := buildEngine(t, cfg)
		telemetry.SetEnabled(enabled)
		defer telemetry.SetEnabled(true)
		in := input(3)
		for i := 0; i < 5; i++ { // warm pools and codec buffers
			if _, err := e.Infer(in); err != nil {
				t.Fatal(err)
			}
		}
		best := -1.0
		for trial := 0; trial < 3; trial++ {
			got := testing.AllocsPerRun(20, func() {
				if _, err := e.Infer(in); err != nil {
					t.Fatal(err)
				}
			})
			if best < 0 || got < best {
				best = got
			}
		}
		return best
	}
	disabled := measure(false)
	enabled := measure(true)
	t.Logf("warm Infer allocs/op: disabled=%.1f enabled=%.1f", disabled, enabled)
	// Slack of 2 allocs/op absorbs scheduler noise across goroutines; the
	// telemetry layer itself must add nothing.
	if enabled > disabled+2 {
		t.Fatalf("telemetry adds allocations on the warm path: enabled=%.1f disabled=%.1f", enabled, disabled)
	}
}
