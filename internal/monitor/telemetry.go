package monitor

import (
	"strconv"

	"repro/internal/telemetry"
)

// stageMetrics are one pipeline stage's series, labeled stage="<idx>".
type stageMetrics struct {
	queueDepth *telemetry.Gauge     // batches queued behind the credit window
	windowOcc  *telemetry.Gauge     // outstanding gathers (credit occupancy)
	gatherNs   *telemetry.Histogram // dispatch -> gather-close latency
	forwards   *telemetry.Counter   // checkpoint outputs released downstream
	ladder     *telemetry.Gauge     // current degradation rung
}

// engineMetrics holds every handle the engine records into. Registration
// happens once in NewEngine; all hot-path touches are lock-free atomic ops on
// these pre-resolved series.
type engineMetrics struct {
	batches         *telemetry.Counter
	batchErrors     *telemetry.Counter
	batchNs         *telemetry.Histogram
	voteOK          *telemetry.Counter
	voteDivergence  *telemetry.Counter
	voteLateDissent *telemetry.Counter
	eventsPublished *telemetry.Counter
	eventsDropped   *telemetry.Gauge
	stages          []stageMetrics
}

func newEngineMetrics(reg *telemetry.Registry, nStages int) *engineMetrics {
	m := &engineMetrics{
		batches:         reg.Counter(telemetry.MetricEngineBatches),
		batchErrors:     reg.Counter(telemetry.MetricEngineBatchErrors),
		batchNs:         reg.Histogram(telemetry.MetricEngineBatchNs),
		voteOK:          reg.Counter(telemetry.MetricEngineVotes, telemetry.L("outcome", telemetry.VoteOutcomeOK)),
		voteDivergence:  reg.Counter(telemetry.MetricEngineVotes, telemetry.L("outcome", telemetry.VoteOutcomeDivergence)),
		voteLateDissent: reg.Counter(telemetry.MetricEngineVotes, telemetry.L("outcome", telemetry.VoteOutcomeLateDissent)),
		eventsPublished: reg.Counter(telemetry.MetricEventsPublished),
		eventsDropped:   reg.Gauge(telemetry.MetricEventsDropped),
		stages:          make([]stageMetrics, nStages),
	}
	for i := range m.stages {
		l := telemetry.L("stage", strconv.Itoa(i))
		m.stages[i] = stageMetrics{
			queueDepth: reg.Gauge(telemetry.MetricEngineQueueDepth, l),
			windowOcc:  reg.Gauge(telemetry.MetricEngineWindowOccupied, l),
			gatherNs:   reg.Histogram(telemetry.MetricEngineGatherNs, l),
			forwards:   reg.Counter(telemetry.MetricEngineForwards, l),
			ladder:     reg.Gauge(telemetry.MetricEngineLadderRung, l),
		}
	}
	return m
}
