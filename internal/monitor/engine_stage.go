package monitor

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// gather accumulates variant results for one (stage, batch) checkpoint.
type gather struct {
	id      uint64
	trace   uint64 // batch trace ID; zero when telemetry is off
	mask    []bool // handle was live at dispatch
	arrived []bool
	results []map[string]*tensor.Tensor // nil = crashed / not arrived
	errs    []string
	count   int // arrivals among masked handles
	want    int // masked handle count
	// dispatchedAt anchors the gather-latency histogram and the gather span;
	// only set when the batch is traced.
	dispatchedAt time.Time
	// deadline is when non-arrived variants are declared dead; zero when
	// StageTimeout is disabled.
	deadline time.Time
	// forwarded marks that the async fast-quorum already released the
	// pipeline for this batch.
	forwarded bool
}

func (g *gather) allArrived() bool { return g.count >= g.want }

// voteSlice compacts the masked results for voting; idxMap maps vote index
// back to handle index.
func (g *gather) voteSlice() (res []map[string]*tensor.Tensor, idxMap []int) {
	for i, m := range g.mask {
		if !m {
			continue
		}
		res = append(res, g.results[i])
		idxMap = append(idxMap, i)
	}
	return res, idxMap
}

// stageState is the single-goroutine mutable state of one stage worker: the
// live-slot set, outstanding gathers, and the stage's degradation rung.
type stageState struct {
	e         *Engine
	s         *stage
	live      []bool
	liveCount int
	gathers   map[uint64]*gather
	rung      LadderRung
	lastID    uint64 // highest batch id dispatched at this stage
	pending   []stageWork
}

// stageWorker runs one pipeline stage: dispatching batches to the stage's
// variants and enforcing the slow/fast-path and sync/async checkpoint
// semantics of §4.3, plus the robustness layer — straggler deadlines, the
// degradation ladder and hot replacement of dead slots.
func (e *Engine) stageWorker(s *stage) {
	defer close(s.done)
	st := &stageState{
		e:       e,
		s:       s,
		live:    make([]bool, len(s.spec.Handles)),
		gathers: make(map[uint64]*gather),
	}
	for i, h := range s.spec.Handles {
		if h.Dropped() {
			// Same visibility rule as the dispatch-time prune: an exclusion
			// must never be silent.
			e.recordEvent(Event{Kind: EventVariantDown, Stage: s.idx,
				Variants: []string{h.ID()}, Detail: "excluded at start: variant dropped"})
			continue
		}
		st.live[i] = true
		st.liveCount++
	}
	st.rung = rungFor(st.liveCount, s.mvxSize)
	e.setLadder(s.idx, st.rung)

	// The deadline sweep runs at a fraction of StageTimeout so expiry is
	// detected within ~StageTimeout·9/8 of dispatch.
	var tickCh <-chan time.Time
	if e.cfg.StageTimeout > 0 {
		period := e.cfg.StageTimeout / 8
		if period < time.Millisecond {
			period = time.Millisecond
		}
		tk := time.NewTicker(period)
		defer tk.Stop()
		tickCh = tk.C
	}

	for {
		select {
		case <-e.ctx.Done():
			return
		case w := <-s.workCh:
			st.pending = append(st.pending, w)
		case hr := <-s.resCh:
			st.onResult(hr)
		case r := <-s.replCh:
			st.install(r.slot, r.h)
		case now := <-tickCh:
			st.expire(now)
		}
		// Credits are spent by dispatch and refunded when gathers resolve, so
		// the drain runs after every event — never from inside evaluateGather,
		// whose callers may be mid-iteration over the gathers map.
		st.drainPending()
		if telemetry.Enabled() {
			sm := &e.met.stages[s.idx]
			sm.queueDepth.Set(int64(len(st.pending)))
			sm.windowOcc.Set(int64(len(st.gathers)))
		}
	}
}

// drainPending dispatches queued batches while the stage holds credits: with
// a window of W, at most W gathers may be outstanding (a gather counts until
// its final straggler arrives, even after an async quorum forwarded it). A
// zero window disables the credit check and pending drains immediately. The
// budget is re-read from the engine each drain so a live retune
// (Engine.SetInflightWindow) applies without restarting the stage.
func (st *stageState) drainPending() {
	window := int(st.e.dynWindow.Load())
	for len(st.pending) > 0 && (window <= 0 || len(st.gathers) < window) {
		w := st.pending[0]
		n := copy(st.pending, st.pending[1:])
		st.pending[n] = stageWork{} // release tensor refs
		st.pending = st.pending[:n]
		st.dispatch(w)
	}
}

// dispatch sends one batch to the stage's live variants and opens its gather.
func (st *stageState) dispatch(w stageWork) {
	e, s := st.e, st.s
	// Sync with variants excluded externally (response policy on another
	// engine, monitor updates). This exclusion would otherwise be invisible
	// in the event log, so record it like any other departure.
	for i, h := range s.spec.Handles {
		if st.live[i] && h.Dropped() {
			st.markDead(i, EventVariantDown, w.id, "excluded at dispatch: variant dropped")
		}
	}
	if st.liveCount == 0 {
		e.post(routerMsg{done: true, stageIdx: s.idx, id: w.id,
			err: fmt.Errorf("monitor: stage %d has no live variants", s.idx)})
		return
	}
	st.lastID = w.id
	g := &gather{
		id:      w.id,
		trace:   w.trace,
		mask:    append([]bool(nil), st.live...),
		arrived: make([]bool, len(st.live)),
		results: make([]map[string]*tensor.Tensor, len(st.live)),
		errs:    make([]string, len(st.live)),
	}
	for _, m := range g.mask {
		if m {
			g.want++
		}
	}
	if e.cfg.StageTimeout > 0 {
		g.deadline = time.Now().Add(e.cfg.StageTimeout)
	}
	// One clock read opens the dispatch span; each successful send advances
	// `last`, which doubles as the next send's start and finally the dispatch
	// end, so a traced dispatch costs 1+N clock reads instead of 2+2N.
	var t0, last time.Time
	if w.trace != 0 && telemetry.Enabled() {
		t0 = time.Now()
		g.dispatchedAt = t0
		last = t0
	}
	st.gathers[w.id] = g
	// Encode-once fan-out: the batch is marshalled exactly once, into a
	// pooled buffer, regardless of how many variants serve the stage. Each
	// live handle transmits the same payload (secure channels seal their own
	// frame from it without touching it). The trace ID rides the batch header
	// so variant-side spans stitch into this batch's timeline.
	buf := wire.MarshalBatch(&wire.Batch{ID: w.id, Trace: w.trace, Tensors: w.tensors})
	payload := buf.Payload()
	for i, h := range s.spec.Handles {
		if !st.live[i] {
			continue
		}
		if err := h.sendEncoded(w.id, payload); err != nil {
			st.markDead(i, EventVariantDown, w.id, err.Error())
			continue
		}
		if !t0.IsZero() {
			// Per-variant child span covering seal + transmit of this
			// variant's copy (per-op seal cost is also in mvtee_chan_seal_ns).
			now := time.Now()
			e.tracer.Record(telemetry.Span{
				Trace: w.trace, Batch: w.id, Name: "send", Stage: s.idx,
				Variant: h.ID(), Start: last.UnixNano(), End: now.UnixNano(),
			})
			last = now
		}
	}
	buf.Free()
	if !t0.IsZero() {
		e.tracer.Record(telemetry.Span{
			Trace: w.trace, Batch: w.id, Name: "dispatch", Stage: s.idx,
			Start: t0.UnixNano(), End: last.UnixNano(),
		})
	}
	// markDead may already have completed the gather.
	if gg, ok := st.gathers[w.id]; ok {
		st.evaluateGather(gg)
	}
}

// onResult merges one variant result into its gather.
func (st *stageState) onResult(hr handleResult) {
	idx := st.e.handleIndex(st.s, hr.handle)
	if idx < 0 {
		return // stale handle (already replaced)
	}
	if hr.err != nil {
		st.markDead(idx, EventVariantDown, st.lastID, hr.err.Error())
		return
	}
	g, ok := st.gathers[hr.res.ID]
	if !ok || !g.mask[idx] || g.arrived[idx] {
		return // stale, unmasked or duplicate result
	}
	g.arrived[idx] = true
	g.count++
	if hr.res.Err != "" {
		g.results[idx] = nil
		g.errs[idx] = hr.res.Err
	} else {
		g.results[idx] = hr.res.Tensors
	}
	st.evaluateGather(g)
}

// install fills a dead slot with a replacement handle. Outstanding gathers
// keep their dispatch-time mask, so the replacement serves from the next
// checkpoint only.
func (st *stageState) install(slot int, h *Handle) {
	st.s.spec.Handles[slot] = h
	if !st.live[slot] {
		st.live[slot] = true
		st.liveCount++
	}
	st.updateLadder(st.lastID)
}

// expire enforces the straggler deadline: every masked variant that has not
// arrived when its gather's deadline passes is declared dead, which also
// completes — and thereby purges — async-forwarded gathers whose stragglers
// would otherwise leak for the life of the stage.
func (st *stageState) expire(now time.Time) {
	var victims map[int]uint64 // slot -> first expired batch it missed
	for _, g := range st.gathers {
		if g.deadline.IsZero() || g.allArrived() || now.Before(g.deadline) {
			continue
		}
		for i, m := range g.mask {
			if m && !g.arrived[i] && st.live[i] {
				if victims == nil {
					victims = make(map[int]uint64)
				}
				if _, ok := victims[i]; !ok {
					victims[i] = g.id
				}
			}
		}
	}
	for idx, id := range victims {
		st.markDead(idx, EventVariantTimeout, id,
			fmt.Sprintf("stage deadline %v exceeded", st.e.cfg.StageTimeout))
	}
}

// markDead removes a slot from the live set, records the departure, requests
// a replacement, updates the ladder, and completes the slot's entry in every
// outstanding gather as a crash.
func (st *stageState) markDead(idx int, kind EventKind, batchID uint64, reason string) {
	if !st.live[idx] {
		return
	}
	st.live[idx] = false
	st.liveCount--
	deadID := st.s.spec.Handles[idx].ID()
	st.e.recordEvent(Event{
		Kind: kind, Stage: st.s.idx, BatchID: batchID,
		Variants: []string{deadID}, Detail: reason,
	})
	st.requestReplace(idx, deadID)
	st.updateLadder(batchID)
	for _, g := range st.gathers {
		if g.mask[idx] && !g.arrived[idx] {
			g.arrived[idx] = true
			g.results[idx] = nil
			g.errs[idx] = reason
			g.count++
			st.evaluateGather(g)
		}
	}
}

// requestReplace queues a hot-replacement request when the engine has a
// replacement provider configured.
func (st *stageState) requestReplace(slot int, deadID string) {
	if st.e.cfg.Replace == nil {
		return
	}
	select {
	case st.e.replReqCh <- replaceReq{s: st.s, slot: slot, deadID: deadID, sinceBatch: st.lastID}:
	default:
		st.e.recordEvent(Event{Kind: EventReplaceFailed, Stage: st.s.idx,
			Variants: []string{deadID}, Detail: "replacement queue full"})
	}
}

// updateLadder recomputes the stage's rung after a membership change and
// records the transition.
func (st *stageState) updateLadder(batchID uint64) {
	nr := rungFor(st.liveCount, st.s.mvxSize)
	if nr == st.rung {
		return
	}
	kind := EventLadderDemoted
	if nr > st.rung {
		kind = EventLadderPromoted
	}
	detail := fmt.Sprintf("%s→%s (%d/%d live)", st.rung, nr, st.liveCount, st.s.mvxSize)
	if nr == LadderSingle && st.s.mvxSize > 1 {
		detail += "; single-variant fast path, results unverified (report-only)"
	}
	st.rung = nr
	st.e.setLadder(st.s.idx, nr)
	st.e.recordEvent(Event{Kind: kind, Stage: st.s.idx, BatchID: batchID, Detail: detail})
}

func (e *Engine) handleIndex(s *stage, h *Handle) int {
	for i, hh := range s.spec.Handles {
		if hh == h {
			return i
		}
	}
	return -1
}

func (e *Engine) post(m routerMsg) {
	select {
	case e.routerCh <- m:
	case <-e.ctx.Done():
	}
}

// closeGather resolves a gather (refunding its window credit) and records its
// dispatch→close latency when the batch is traced. It returns the close
// timestamp (zero when untraced) so callers can reuse the clock read as the
// start of whatever they do next.
func (st *stageState) closeGather(g *gather) time.Time {
	delete(st.gathers, g.id)
	if g.dispatchedAt.IsZero() {
		return time.Time{}
	}
	now := time.Now()
	st.e.met.stages[st.s.idx].gatherNs.Observe(now.Sub(g.dispatchedAt).Nanoseconds())
	st.e.tracer.Record(telemetry.Span{
		Trace: g.trace, Batch: g.id, Name: "gather", Stage: st.s.idx,
		Start: g.dispatchedAt.UnixNano(), End: now.UnixNano(),
	})
	return now
}

// forward releases a checkpoint output downstream, counting it and marking
// the release instant on traced batches. Hot callers that just took a clock
// reading pass it as now; a zero now means take a fresh one.
func (st *stageState) forward(g *gather, outs map[string]*tensor.Tensor, now time.Time) {
	if sink, rec := st.e.cfg.DigestSink, st.e.cfg.Transcript; sink != nil {
		// Per-checkpoint digest tap: fingerprint the chosen output before it
		// leaves the stage. The cluster tier streams it so remote followers
		// can vote on 32 bytes instead of receiving the tensors; the
		// transcript recorder binds it into the batch's audit leaf. One
		// digest computation feeds both.
		d := check.DigestOf(outs)
		sink(g.id, st.s.idx, d)
		rec.Checkpoint(g.id, st.s.idx, d)
	} else if rec != nil {
		// No cluster sink needs the digest synchronously — hand the recorder
		// the tensors by reference and let its worker hash them off the hot
		// path (outputs are immutable once forwarded).
		rec.CheckpointTensors(g.id, st.s.idx, outs)
	}
	st.e.post(routerMsg{done: true, stageIdx: st.s.idx, id: g.id, outs: outs})
	if !g.dispatchedAt.IsZero() {
		st.e.met.stages[st.s.idx].forwards.Inc()
		if now.IsZero() {
			now = time.Now()
		}
		ns := now.UnixNano()
		st.e.tracer.Record(telemetry.Span{
			Trace: g.trace, Batch: g.id, Name: "forward", Stage: st.s.idx,
			Start: ns, End: ns,
		})
	}
}

// evaluateGather applies the checkpoint decision logic:
//
//   - fast path (single variant): forward as soon as the result arrives;
//   - slow path, sync: wait for all variants, vote, react on divergence;
//   - slow path, async: forward once a majority quorum agrees, then
//     cross-validate stragglers retroactively, reacting at the earliest next
//     checkpoint on late dissent (Figure 8).
func (st *stageState) evaluateGather(g *gather) {
	e, s := st.e, st.s
	if g.want == 1 {
		if !g.allArrived() {
			return
		}
		ts := st.closeGather(g)
		res, idxMap := g.voteSlice()
		if res[0] == nil {
			e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id,
				err: fmt.Errorf("monitor: stage %d variant %s failed: %s",
					s.idx, s.spec.Handles[idxMap[0]].ID(), g.errs[idxMap[0]])})
			return
		}
		st.forward(g, res[0], ts)
		return
	}

	// Async quorum: attempt early forwarding before all variants report.
	if e.cfg.Async && !g.forwarded && !g.allArrived() {
		if 2*g.count <= g.want {
			// A majority cluster is impossible until more than half the
			// variants have reported; skip the pairwise vote entirely.
			return
		}
		res, _ := g.voteSlice()
		v, err := check.Vote(res, e.cfg.Policy, check.Majority)
		if err == nil && v.OK && v.Chosen >= 0 {
			g.forwarded = true
			st.forward(g, res[v.Chosen], time.Time{})
		}
		return
	}
	if !g.allArrived() {
		return
	}

	// Final (full) vote. The gather-close timestamp doubles as the vote span
	// start (assembling the vote slice is part of checkpoint evaluation).
	v0 := st.closeGather(g)
	res, idxMap := g.voteSlice()
	v, err := check.Vote(res, e.cfg.Policy, e.cfg.Vote)
	var vEnd time.Time
	if !v0.IsZero() {
		vEnd = time.Now()
		e.tracer.Record(telemetry.Span{
			Trace: g.trace, Batch: g.id, Name: "vote", Stage: s.idx,
			Start: v0.UnixNano(), End: vEnd.UnixNano(),
		})
	}
	if err != nil {
		e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id,
			err: fmt.Errorf("monitor: stage %d vote: %w", s.idx, err)})
		return
	}
	if telemetry.Enabled() {
		switch {
		case v.OK:
			e.met.voteOK.Inc()
		case g.forwarded:
			e.met.voteLateDissent.Inc()
		default:
			e.met.voteDivergence.Inc()
		}
	}
	if v.OK {
		if !g.forwarded {
			st.forward(g, res[v.Chosen], vEnd)
		}
		return
	}

	// Divergence.
	dissenters := make([]string, 0, len(v.Dissenters))
	var detail []string
	for _, di := range v.Dissenters {
		hi := idxMap[di]
		dissenters = append(dissenters, s.spec.Handles[hi].ID())
		if g.errs[hi] != "" {
			detail = append(detail, fmt.Sprintf("%s: %s", s.spec.Handles[hi].ID(), g.errs[hi]))
		}
	}
	kind := EventDivergence
	if g.forwarded {
		kind = EventLateDissent
	}
	e.recordEvent(Event{
		Kind: kind, Stage: s.idx, BatchID: g.id,
		Variants: dissenters, Detail: strings.Join(detail, "; "),
	})

	switch e.cfg.Response {
	case Halt:
		e.post(routerMsg{fatal: fmt.Errorf("monitor: divergence at stage %d batch %d (dissenters %v)",
			s.idx, g.id, dissenters)})
	case DropVariant, Recover:
		for _, di := range v.Dissenters {
			hi := idxMap[di]
			if !st.live[hi] {
				continue // crashed or timed out: departure already recorded
			}
			s.spec.Handles[hi].drop()
			st.markDead(hi, EventVariantDropped, g.id, "dissent at checkpoint")
		}
		st.finishDiverged(g, v, res)
	case ReportOnly:
		st.finishDiverged(g, v, res)
	}
}

// finishDiverged completes a diverged batch with the majority output when
// one exists (recovery), or fails the batch otherwise. The majority is a
// strict majority of the variants masked at dispatch (len(res)) — crashed
// and timed-out variants count in the denominator and against the quorum,
// matching check.Vote's Majority rule over the same slice, so a crash can
// never make a borderline cluster look like a majority.
func (st *stageState) finishDiverged(g *gather, v check.Verdict, res []map[string]*tensor.Tensor) {
	e, s := st.e, st.s
	if g.forwarded {
		return // downstream already has the quorum output
	}
	if v.Chosen >= 0 && len(v.Agreeing)*2 > len(res) {
		st.forward(g, res[v.Chosen], time.Time{})
		return
	}
	e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id,
		err: fmt.Errorf("monitor: stage %d batch %d: no agreeing majority", s.idx, g.id)})
}
