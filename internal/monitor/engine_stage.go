package monitor

import (
	"fmt"
	"strings"

	"repro/internal/check"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// gather accumulates variant results for one (stage, batch) checkpoint.
type gather struct {
	id      uint64
	mask    []bool // handle was live at dispatch
	arrived []bool
	results []map[string]*tensor.Tensor // nil = crashed / not arrived
	errs    []string
	count   int // arrivals among masked handles
	want    int // masked handle count
	// forwarded marks that the async fast-quorum already released the
	// pipeline for this batch.
	forwarded bool
}

func (g *gather) allArrived() bool { return g.count >= g.want }

// voteSlice compacts the masked results for voting; idxMap maps vote index
// back to handle index.
func (g *gather) voteSlice() (res []map[string]*tensor.Tensor, idxMap []int) {
	for i, m := range g.mask {
		if !m {
			continue
		}
		res = append(res, g.results[i])
		idxMap = append(idxMap, i)
	}
	return res, idxMap
}

// stageWorker runs one pipeline stage: dispatching batches to the stage's
// variants and enforcing the slow/fast-path and sync/async checkpoint
// semantics of §4.3.
func (e *Engine) stageWorker(s *stage) {
	defer close(s.done)
	live := make([]bool, len(s.spec.Handles))
	liveCount := 0
	for i, h := range s.spec.Handles {
		if !h.Dropped() {
			live[i] = true
			liveCount++
		}
	}
	gathers := make(map[uint64]*gather)

	markDead := func(idx int, reason string) {
		if !live[idx] {
			return
		}
		live[idx] = false
		liveCount--
		e.recordEvent(Event{
			Kind: EventVariantDown, Stage: s.idx,
			Variants: []string{s.spec.Handles[idx].ID()}, Detail: reason,
		})
		// Outstanding gathers lose this variant: it arrives as a crash.
		for _, g := range gathers {
			if g.mask[idx] && !g.arrived[idx] {
				g.arrived[idx] = true
				g.results[idx] = nil
				g.errs[idx] = reason
				g.count++
				e.evaluateGather(s, g, gathers)
			}
		}
	}

	for {
		select {
		case <-e.ctx.Done():
			return
		case w := <-s.workCh:
			// Sync with variants excluded by the DropVariant response.
			for i, h := range s.spec.Handles {
				if live[i] && h.Dropped() {
					live[i] = false
					liveCount--
				}
			}
			if liveCount == 0 {
				e.post(routerMsg{done: true, stageIdx: s.idx, id: w.id,
					err: fmt.Errorf("monitor: stage %d has no live variants", s.idx)})
				continue
			}
			g := &gather{
				id:      w.id,
				mask:    append([]bool(nil), live...),
				arrived: make([]bool, len(live)),
				results: make([]map[string]*tensor.Tensor, len(live)),
				errs:    make([]string, len(live)),
			}
			for _, m := range g.mask {
				if m {
					g.want++
				}
			}
			gathers[w.id] = g
			batch := &wire.Batch{ID: w.id, Tensors: w.tensors}
			for i, h := range s.spec.Handles {
				if !live[i] {
					continue
				}
				if err := h.send(batch); err != nil {
					markDead(i, err.Error())
				}
			}
			// markDead may already have completed the gather.
			if gg, ok := gathers[w.id]; ok {
				e.evaluateGather(s, gg, gathers)
			}
		case hr := <-s.resCh:
			idx := e.handleIndex(s, hr.handle)
			if idx < 0 {
				continue
			}
			if hr.err != nil {
				markDead(idx, hr.err.Error())
				continue
			}
			g, ok := gathers[hr.res.ID]
			if !ok || !g.mask[idx] || g.arrived[idx] {
				continue // stale, unmasked or duplicate result
			}
			g.arrived[idx] = true
			g.count++
			if hr.res.Err != "" {
				g.results[idx] = nil
				g.errs[idx] = hr.res.Err
			} else {
				g.results[idx] = hr.res.Tensors
			}
			e.evaluateGather(s, g, gathers)
		}
	}
}

func (e *Engine) handleIndex(s *stage, h *Handle) int {
	for i, hh := range s.spec.Handles {
		if hh == h {
			return i
		}
	}
	return -1
}

func (e *Engine) post(m routerMsg) {
	select {
	case e.routerCh <- m:
	case <-e.ctx.Done():
	}
}

// evaluateGather applies the checkpoint decision logic:
//
//   - fast path (single variant): forward as soon as the result arrives;
//   - slow path, sync: wait for all variants, vote, react on divergence;
//   - slow path, async: forward once a majority quorum agrees, then
//     cross-validate stragglers retroactively, reacting at the earliest next
//     checkpoint on late dissent (Figure 8).
func (e *Engine) evaluateGather(s *stage, g *gather, gathers map[uint64]*gather) {
	if g.want == 1 {
		if !g.allArrived() {
			return
		}
		delete(gathers, g.id)
		res, idxMap := g.voteSlice()
		if res[0] == nil {
			e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id,
				err: fmt.Errorf("monitor: stage %d variant %s failed: %s",
					s.idx, s.spec.Handles[idxMap[0]].ID(), g.errs[idxMap[0]])})
			return
		}
		e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id, outs: res[0]})
		return
	}

	// Async quorum: attempt early forwarding before all variants report.
	if e.cfg.Async && !g.forwarded && !g.allArrived() {
		if 2*g.count <= g.want {
			// A majority cluster is impossible until more than half the
			// variants have reported; skip the pairwise vote entirely.
			return
		}
		res, _ := g.voteSlice()
		v, err := check.Vote(res, e.cfg.Policy, check.Majority)
		if err == nil && v.OK && v.Chosen >= 0 {
			g.forwarded = true
			e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id, outs: res[v.Chosen]})
		}
		return
	}
	if !g.allArrived() {
		return
	}

	// Final (full) vote.
	delete(gathers, g.id)
	res, idxMap := g.voteSlice()
	v, err := check.Vote(res, e.cfg.Policy, e.cfg.Vote)
	if err != nil {
		e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id,
			err: fmt.Errorf("monitor: stage %d vote: %w", s.idx, err)})
		return
	}
	if v.OK {
		if !g.forwarded {
			e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id, outs: res[v.Chosen]})
		}
		return
	}

	// Divergence.
	dissenters := make([]string, 0, len(v.Dissenters))
	var detail []string
	for _, di := range v.Dissenters {
		hi := idxMap[di]
		dissenters = append(dissenters, s.spec.Handles[hi].ID())
		if g.errs[hi] != "" {
			detail = append(detail, fmt.Sprintf("%s: %s", s.spec.Handles[hi].ID(), g.errs[hi]))
		}
	}
	kind := EventDivergence
	if g.forwarded {
		kind = EventLateDissent
	}
	e.recordEvent(Event{
		Kind: kind, Stage: s.idx, BatchID: g.id,
		Variants: dissenters, Detail: strings.Join(detail, "; "),
	})

	switch e.cfg.Response {
	case Halt:
		e.post(routerMsg{fatal: fmt.Errorf("monitor: divergence at stage %d batch %d (dissenters %v)",
			s.idx, g.id, dissenters)})
	case DropVariant:
		for _, di := range v.Dissenters {
			hi := idxMap[di]
			h := s.spec.Handles[hi]
			h.drop()
			e.recordEvent(Event{Kind: EventVariantDropped, Stage: s.idx, BatchID: g.id,
				Variants: []string{h.ID()}})
		}
		e.finishDiverged(s, g, v, res)
	case ReportOnly:
		e.finishDiverged(s, g, v, res)
	}
}

// finishDiverged completes a diverged batch with the majority output when
// one exists (recovery), or fails the batch otherwise.
func (e *Engine) finishDiverged(s *stage, g *gather, v check.Verdict, res []map[string]*tensor.Tensor) {
	if g.forwarded {
		return // downstream already has the quorum output
	}
	if v.Chosen >= 0 && len(v.Agreeing)*2 > len(res) {
		e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id, outs: res[v.Chosen]})
		return
	}
	e.post(routerMsg{done: true, stageIdx: s.idx, id: g.id,
		err: fmt.Errorf("monitor: stage %d batch %d: no agreeing majority", s.idx, g.id)})
}
