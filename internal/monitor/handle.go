package monitor

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/enclave"
	"repro/internal/securechan"
	"repro/internal/wire"
)

// Handle is the monitor's connection to one bound variant TEE.
type Handle struct {
	id        string
	partition int
	spec      string
	conn      securechan.Conn
	report    *enclave.Report // from RA-TLS handshake (nil on plain channels)
	evidence  [32]byte        // second-stage manifest installation evidence

	mu      sync.Mutex
	dropped bool

	// The handle owns its connection reader so engines can be torn down
	// and rebuilt (variant updates) without disturbing live variants.
	readerOnce sync.Once
	results    chan handleResult
}

// NewHandle wraps a bound variant connection. The monitor package's Bind flow
// constructs these; tests may build them directly.
func NewHandle(id string, partition int, spec string, conn securechan.Conn) *Handle {
	return &Handle{id: id, partition: partition, spec: spec, conn: conn,
		results: make(chan handleResult, 64)}
}

// ID returns the variant identifier assigned at bootstrap.
func (h *Handle) ID() string { return h.id }

// Partition returns the pipeline stage index the variant serves.
func (h *Handle) Partition() int { return h.partition }

// Spec returns the pool spec name the variant was initialized from.
func (h *Handle) Spec() string { return h.spec }

// Report returns the attestation report bound to the channel, if any.
func (h *Handle) Report() *enclave.Report { return h.report }

// Evidence returns the second-stage manifest installation evidence.
func (h *Handle) Evidence() [32]byte { return h.evidence }

// Dropped reports whether the monitor excluded this variant after dissent.
func (h *Handle) Dropped() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

func (h *Handle) drop() {
	h.mu.Lock()
	h.dropped = true
	h.mu.Unlock()
}

// sendEncoded submits an already-marshalled batch payload to the variant —
// the encode-once fan-out path. The dispatcher marshals a batch exactly once
// and every live handle transmits the same payload; secure channels seal
// their own pooled frame from it, leaving the payload intact for the next
// handle.
func (h *Handle) sendEncoded(id uint64, payload []byte) error {
	if err := wire.SendEncoded(h.conn, payload); err != nil {
		return fmt.Errorf("monitor: send batch %d to %s: %w", id, h.id, err)
	}
	return nil
}

// startReader launches the handle-owned reader goroutine (idempotent). It
// pumps results from the variant into the handle's buffered channel until
// the connection fails or closes, ending with a terminal error entry.
func (h *Handle) startReader() {
	h.readerOnce.Do(func() {
		go func() {
			for {
				msg, err := wire.Recv(h.conn)
				if err != nil {
					h.results <- handleResult{handle: h, err: err}
					return
				}
				switch m := msg.(type) {
				case *wire.Result:
					h.results <- handleResult{handle: h, res: m}
				case *wire.Error:
					h.results <- handleResult{handle: h, err: fmt.Errorf("monitor: variant %s: %s", h.id, m.Message)}
					return
				default:
					// Ignore stray control messages on the data plane.
				}
			}
		}()
	})
}

// shutdown asks the variant to terminate and closes the channel. The
// shutdown notice is a courtesy: a hung variant that isn't draining its
// channel must not stall teardown, so the send runs under a short IO
// deadline before the close that tears the transport down regardless.
func (h *Handle) shutdown() {
	if dc, ok := h.conn.(securechan.DeadlineConn); ok {
		dc.SetIOTimeout(500 * time.Millisecond)
	}
	_ = wire.Send(h.conn, &wire.Shutdown{})
	_ = h.conn.Close()
}

// handleResult is one event from a variant: a checkpoint result or a
// connection-level failure.
type handleResult struct {
	handle *Handle
	res    *wire.Result
	err    error
}
