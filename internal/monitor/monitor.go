package monitor

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/check"
	"repro/internal/enclave"
	"repro/internal/securechan"
	"repro/internal/transcript"
	"repro/internal/wire"
)

// Assignment instructs the monitor how to initialize one variant TEE from
// the pre-established pool (Figure 6 steps 4–7): its identity, partition,
// variant-specific key, encrypted file set, and the expected second-stage
// manifest evidence.
type Assignment struct {
	VariantID  string
	Partition  int
	Spec       string
	KDK        []byte
	Manifest   string   // host path of the encrypted second-stage manifest
	Files      []string // host paths of the encrypted variant files
	Entrypoint string
	// Evidence is the expected second-stage manifest digest; the variant's
	// installation report must match it.
	Evidence [32]byte
}

// BindingRecord is one entry of the monitor's append-only binding log
// (§4.3: partial updates append bindings for auditing).
type BindingRecord struct {
	VariantID string
	Partition int
	Spec      string
	Evidence  [32]byte
	Bound     time.Time
	Replaced  bool // superseded by a later update
}

// spareEntry is one pre-established spare variant TEE (Figure 6): an attested
// channel plus the assignment to replay when the spare is promoted into a
// dead slot.
type spareEntry struct {
	conn securechan.Conn
	a    Assignment
}

// Monitor is the MVTEE monitor TEE: trust anchor, key distributor and MVX
// execution manager.
type Monitor struct {
	encl     *enclave.Enclave
	verifier *enclave.Verifier

	mu       sync.Mutex
	cfg      *MVXConfig
	keys     map[string][]byte // owner-provisioned pool keys (entry key -> KDK)
	handles  map[string]*Handle
	bindings []BindingRecord
	spares   []spareEntry
	nonce    []byte // provisioning nonce (anti-replay, echoed in results)
	engine   *Engine
	// spareFactory provisions one new pre-attested spare on demand (the
	// adaptive controller's scale-up hook); nil when the deployment cannot
	// synthesize spares (process-separated monitors).
	spareFactory func(partition int) error
	// digestSink, when set before BuildEngine, taps every per-checkpoint
	// digest the engine computes (cluster replicas stream these to the
	// router's early-dissent plane).
	digestSink func(batchID uint64, stage int, digest check.Digest)
	// transcript, when set before BuildEngine, receives the verifiable
	// transcript events from every subsequently built engine.
	transcript *transcript.Recorder
}

// New creates a monitor running in encl, trusting the platforms registered
// in verifier.
func New(encl *enclave.Enclave, verifier *enclave.Verifier) *Monitor {
	return &Monitor{encl: encl, verifier: verifier, handles: make(map[string]*Handle)}
}

// Enclave returns the monitor's enclave (for attestation by the owner).
func (m *Monitor) Enclave() *enclave.Enclave { return m.encl }

// Provision installs the owner's MVX configuration (Figure 6 step 3). The
// nonce protects the provisioning round against replay and is echoed in the
// initialization results.
func (m *Monitor) Provision(p *wire.Provision) error {
	cfg, err := ParseConfig(p.Config)
	if err != nil {
		return err
	}
	if len(p.Nonce) == 0 {
		return fmt.Errorf("%w: missing provisioning nonce", ErrConfig)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg = cfg
	m.nonce = append([]byte(nil), p.Nonce...)
	if p.Keys != nil {
		m.keys = make(map[string][]byte, len(p.Keys))
		for k, v := range p.Keys {
			m.keys[k] = append([]byte(nil), v...)
		}
	}
	return nil
}

// KeyFor returns the owner-provisioned KDK for a pool entry key, when keys
// were provisioned over the channel (process-separated deployments).
func (m *Monitor) KeyFor(entryKey string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, ok := m.keys[entryKey]
	return k, ok
}

// Config returns the provisioned MVX configuration.
func (m *Monitor) Config() *MVXConfig {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg
}

// Binding errors.
var (
	ErrEvidence  = errors.New("monitor: second-stage evidence mismatch")
	ErrBindState = errors.New("monitor: unexpected message during binding")
)

// Bind runs the monitor side of the variant initialization protocol over an
// established (attested) channel: key distribution (step 5), installation
// evidence verification (step 6), and binding confirmation (step 7). On
// success the variant is recorded in the append-only binding log and ready
// for engine wiring.
func (m *Monitor) Bind(conn securechan.Conn, a Assignment) (*Handle, error) {
	return m.bindResume(conn, a, 0)
}

// bindResume is Bind with a resume point: hot replacement binds a spare
// mid-run and tells it the first batch ID it will serve (§2.4 recover), so
// the variant knows earlier IDs belonged to its predecessor.
func (m *Monitor) bindResume(conn securechan.Conn, a Assignment, resume uint64) (*Handle, error) {
	if err := wire.Send(conn, &wire.AssignKey{
		VariantID:  a.VariantID,
		Partition:  a.Partition,
		KDK:        a.KDK,
		ManifestPB: []byte(a.Manifest),
		Files:      a.Files,
		Entrypoint: a.Entrypoint,
	}); err != nil {
		return nil, fmt.Errorf("monitor: assign key to %s: %w", a.VariantID, err)
	}
	msg, err := wire.Recv(conn)
	if err != nil {
		return nil, fmt.Errorf("monitor: await installation of %s: %w", a.VariantID, err)
	}
	inst, ok := msg.(*wire.Installed)
	if !ok {
		if e, isErr := msg.(*wire.Error); isErr {
			return nil, fmt.Errorf("monitor: variant %s bootstrap: %s", a.VariantID, e.Message)
		}
		return nil, fmt.Errorf("%w: got %T", ErrBindState, msg)
	}
	if inst.VariantID != a.VariantID {
		return nil, fmt.Errorf("%w: identity %q != %q", ErrBindState, inst.VariantID, a.VariantID)
	}
	if !bytes.Equal(inst.Evidence[:], a.Evidence[:]) {
		return nil, fmt.Errorf("%w: variant %s", ErrEvidence, a.VariantID)
	}
	if err := wire.Send(conn, &wire.Bound{VariantID: a.VariantID, Resume: resume}); err != nil {
		return nil, fmt.Errorf("monitor: confirm binding of %s: %w", a.VariantID, err)
	}

	h := NewHandle(a.VariantID, a.Partition, a.Spec, conn)
	h.evidence = inst.Evidence
	if sc, isSecure := conn.(*securechan.SecureConn); isSecure {
		h.report = sc.PeerReport()
	}
	m.mu.Lock()
	m.handles[a.VariantID] = h
	m.bindings = append(m.bindings, BindingRecord{
		VariantID: a.VariantID, Partition: a.Partition, Spec: a.Spec,
		Evidence: inst.Evidence, Bound: time.Now(),
	})
	m.mu.Unlock()
	return h, nil
}

// Bindings returns a copy of the append-only binding log.
func (m *Monitor) Bindings() []BindingRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]BindingRecord(nil), m.bindings...)
}

// BindingsDigest returns the canonical digest of the current binding log —
// the value transcript tree heads chain so variant membership history is
// part of what every signed head attests.
func (m *Monitor) BindingsDigest() [32]byte {
	return DigestBindings(m.Bindings())
}

// DigestBindings canonically digests a binding log: length-prefixed fields
// in record order (the log is append-only, so the order is the history).
// Offline verifiers recompute it from the records served at /audit.
func DigestBindings(recs []BindingRecord) [32]byte {
	h := sha256.New()
	h.Write([]byte("mvtee-bindings-v1"))
	var scratch [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(s)))
		h.Write(scratch[:])
		h.Write([]byte(s))
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(recs)))
	h.Write(scratch[:])
	for _, r := range recs {
		writeStr(r.VariantID)
		binary.LittleEndian.PutUint64(scratch[:], uint64(int64(r.Partition)))
		h.Write(scratch[:])
		writeStr(r.Spec)
		h.Write(r.Evidence[:])
		binary.LittleEndian.PutUint64(scratch[:], uint64(r.Bound.UnixNano()))
		h.Write(scratch[:])
		if r.Replaced {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// AddSpare registers a pre-established spare variant TEE (Figure 6): the
// channel is already attested, but the assignment is only replayed — key
// distribution, evidence check, binding — when a Recover response promotes
// the spare into a dead slot. An Assignment with Partition < 0 can fill any
// stage.
func (m *Monitor) AddSpare(conn securechan.Conn, a Assignment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spares = append(m.spares, spareEntry{conn: conn, a: a})
}

// SpareCount returns the number of unclaimed spares.
func (m *Monitor) SpareCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.spares)
}

// SetSpareFactory installs the provisioning hook ProvisionSpare calls to
// bring up one new pre-attested spare for a partition (-1 = any). The
// factory performs the launch/attest/connect work and registers the result
// via AddSpare; in-process deployments wire core.Deployment's spare
// launcher here. A nil factory (the default) makes ProvisionSpare a no-op
// error — process-separated monitors receive spares over the network and
// cannot synthesize them.
func (m *Monitor) SetSpareFactory(f func(partition int) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spareFactory = f
}

// SetDigestSink installs the per-checkpoint digest tap subsequently built
// engines carry (EngineConfig.DigestSink). Cluster replica daemons wire this
// to their active router connection; call it before BuildEngine.
func (m *Monitor) SetDigestSink(f func(batchID uint64, stage int, digest check.Digest)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.digestSink = f
}

// SetTranscript installs the verifiable-inference transcript recorder
// subsequently built engines feed (EngineConfig.Transcript). Call it before
// BuildEngine, typically with a recorder whose signer is this monitor's
// enclave and whose bindings callback is BindingsDigest.
func (m *Monitor) SetTranscript(rec *transcript.Recorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.transcript = rec
}

// ErrNoSpareFactory rejects ProvisionSpare on monitors without a factory.
var ErrNoSpareFactory = errors.New("monitor: no spare factory configured")

// ProvisionSpare grows the pre-attested spare pool by one (the adaptive
// controller's scale-up actuator). The launch runs without the monitor lock.
func (m *Monitor) ProvisionSpare(partition int) error {
	m.mu.Lock()
	f := m.spareFactory
	m.mu.Unlock()
	if f == nil {
		return ErrNoSpareFactory
	}
	if err := f(partition); err != nil {
		return err
	}
	m.mu.Lock()
	eng, n := m.engine, len(m.spares)
	m.mu.Unlock()
	if eng != nil {
		eng.recordEvent(Event{Kind: EventSpareProvisioned, Stage: partition,
			Detail: fmt.Sprintf("spare pool grew to %d", n)})
	}
	return nil
}

// RetireSpare shrinks the spare pool by one (the controller's scale-down
// actuator): the most recently added unclaimed spare is removed and its
// channel closed, releasing the idle TEE's resources. Returns false when the
// pool is empty.
func (m *Monitor) RetireSpare() bool {
	m.mu.Lock()
	n := len(m.spares)
	if n == 0 {
		m.mu.Unlock()
		return false
	}
	sp := m.spares[n-1]
	m.spares = m.spares[:n-1]
	m.mu.Unlock()
	_ = sp.conn.Close()
	return true
}

// takeSpare pops the first spare eligible for the partition.
func (m *Monitor) takeSpare(partition int) (spareEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, sp := range m.spares {
		if sp.a.Partition != partition && sp.a.Partition >= 0 {
			continue
		}
		m.spares = append(m.spares[:i], m.spares[i+1:]...)
		sp.a.Partition = partition
		return sp, true
	}
	return spareEntry{}, false
}

// retire closes a dead variant's channel, forgets its handle, and marks its
// binding Replaced — the record stays in the append-only log.
func (m *Monitor) retire(variantID string) {
	m.mu.Lock()
	h, ok := m.handles[variantID]
	if ok {
		delete(m.handles, variantID)
	}
	for i := range m.bindings {
		if m.bindings[i].VariantID == variantID && !m.bindings[i].Replaced {
			m.bindings[i].Replaced = true
		}
	}
	m.mu.Unlock()
	if ok {
		h.shutdown()
	}
}

// replaceVariant is the monitor's ReplaceFunc (§2.4 recover): it retires the
// dead variant and binds the first working spare for the partition, resuming
// at the checkpoint after sinceBatch. The engine's replacer goroutine calls
// this off the checkpoint path; binding IO runs without the monitor lock.
func (m *Monitor) replaceVariant(stage, slot int, deadID string, sinceBatch uint64) (*Handle, error) {
	m.retire(deadID)
	for {
		sp, ok := m.takeSpare(stage)
		if !ok {
			return nil, fmt.Errorf("monitor: no spare for partition %d (replacing %s)", stage, deadID)
		}
		h, err := m.bindResume(sp.conn, sp.a, sinceBatch+1)
		if err != nil {
			// Burn the failed spare and try the next.
			_ = sp.conn.Close()
			continue
		}
		return h, nil
	}
}

// Nonce returns the provisioning nonce for echoing in initialization results
// (Figure 6 step 8).
func (m *Monitor) Nonce() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.nonce...)
}

// CombinedAttestation performs the user-facing combined attestation of §4.3:
// the monitor reports on itself and challenges every bound variant with the
// user's nonce. Call before the engine starts (the control channel is reused
// for the data plane afterwards).
func (m *Monitor) CombinedAttestation(nonce []byte) (*attest.Bundle, error) {
	m.mu.Lock()
	if m.engine != nil && m.engine.Started() {
		m.mu.Unlock()
		return nil, errors.New("monitor: combined attestation must run before the engine starts")
	}
	handles := make([]*Handle, 0, len(m.handles))
	for _, h := range m.handles {
		handles = append(handles, h)
	}
	m.mu.Unlock()

	self, err := attest.Respond(m.encl, nonce, "monitor")
	if err != nil {
		return nil, fmt.Errorf("monitor: self attestation: %w", err)
	}
	b := &attest.Bundle{Monitor: self, Variants: make(map[string]*enclave.Report, len(handles))}
	for _, h := range handles {
		if err := wire.Send(h.conn, &wire.AttestReq{Nonce: nonce, Context: "variant/" + h.ID()}); err != nil {
			return nil, fmt.Errorf("monitor: challenge %s: %w", h.ID(), err)
		}
		msg, err := wire.Recv(h.conn)
		if err != nil {
			return nil, fmt.Errorf("monitor: attest %s: %w", h.ID(), err)
		}
		resp, ok := msg.(*wire.AttestResp)
		if !ok {
			return nil, fmt.Errorf("%w: got %T", ErrBindState, msg)
		}
		rep, err := enclave.UnmarshalReport(resp.Report)
		if err != nil {
			return nil, fmt.Errorf("monitor: attest %s: %w", h.ID(), err)
		}
		if err := attest.Check(m.verifier, rep, nonce, "variant/"+h.ID(), nil); err != nil {
			return nil, fmt.Errorf("monitor: attest %s: %w", h.ID(), err)
		}
		b.Variants[h.ID()] = rep
	}
	return b, nil
}

// BuildEngine wires the bound handles into an execution engine according to
// the provisioned configuration and the partition boundary interfaces.
// stages[i] must carry the boundary names for partition i; its Handles field
// is filled in here from the binding log.
func (m *Monitor) BuildEngine(graphInputs, graphOutputs []string, stages []StageSpec) (*Engine, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg == nil {
		return nil, fmt.Errorf("%w: not provisioned", ErrConfig)
	}
	if len(stages) != len(m.cfg.Plans) {
		return nil, fmt.Errorf("%w: %d stages vs %d plans", ErrConfig, len(stages), len(m.cfg.Plans))
	}
	for i := range stages {
		stages[i].Handles = nil
	}
	// Walk the binding log, not the handle map: map iteration order would
	// give every engine its own random per-stage handle order, and the vote's
	// representative output (the first member of the winning cluster, in
	// handle order) would differ between engines built from identical
	// bundles. Cluster replicas cross-check results by digest, so handle
	// order must be a pure function of binding history.
	seen := make(map[string]bool, len(m.handles))
	for _, rec := range m.bindings {
		h, ok := m.handles[rec.VariantID]
		if !ok || seen[rec.VariantID] || h.Dropped() {
			continue
		}
		seen[rec.VariantID] = true
		if h.Partition() < 0 || h.Partition() >= len(stages) {
			return nil, fmt.Errorf("%w: handle %s bound to partition %d", ErrConfig, h.ID(), h.Partition())
		}
		stages[h.Partition()].Handles = append(stages[h.Partition()].Handles, h)
	}
	cfg := m.cfg.withDefaults()
	ecfg := EngineConfig{
		GraphInputs:    graphInputs,
		GraphOutputs:   graphOutputs,
		Stages:         stages,
		Policy:         m.cfg.Policy(),
		Vote:           cfg.Vote,
		Async:          cfg.Async,
		Response:       cfg.Response,
		StageTimeout:   time.Duration(cfg.StageTimeoutMS) * time.Millisecond,
		InflightWindow: cfg.InflightWindow,
		DigestSink:     m.digestSink,
		Transcript:     m.transcript,
	}
	if cfg.Response == Recover {
		// Hot replacement is policy (Recover), the engine only carries the
		// mechanism: dead slots are refilled from the spare pool.
		ecfg.Replace = m.replaceVariant
	}
	eng, err := NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	m.engine = eng
	return eng, nil
}

// Unbind marks a variant's binding record replaced (partial updates) and
// forgets its handle. The record itself stays in the log.
func (m *Monitor) Unbind(variantID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.handles[variantID]; ok {
		h.shutdown()
		delete(m.handles, variantID)
	}
	for i := range m.bindings {
		if m.bindings[i].VariantID == variantID && !m.bindings[i].Replaced {
			m.bindings[i].Replaced = true
		}
	}
	m.engine = nil // engine must be rebuilt after membership changes
}

// ResetEngine detaches the current engine so a new one can be built after
// updates.
func (m *Monitor) ResetEngine() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.engine = nil
}
