package monitor

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/enclave"
	"repro/internal/securechan"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// enclaveTestPlatform and enclaveTestImage give tests a minimal simulated
// platform without repeating boilerplate.
func enclaveTestPlatform() (*enclave.Platform, error) {
	return enclave.NewPlatform("test-plat", enclave.SGX1, 1<<30)
}

func enclaveTestImage() enclave.Image {
	return enclave.Image{Name: "test-monitor", Code: []byte("m"), InitialPages: 1}
}

// fakeVariant serves wire batches on one end of a pipe, producing outputs
// via behave (return tensors, an error string for a simulated crash, or
// delay).
type fakeVariant struct {
	id     string
	behave func(batchID uint64, in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string)
	delay  time.Duration
	served atomic.Int64
}

// start launches the fake variant and returns the monitor-side handle.
func (f *fakeVariant) start(t *testing.T, partition int) *Handle {
	t.Helper()
	mon, varC := net.Pipe()
	mc, vc := securechan.Plain(mon), securechan.Plain(varC)
	go func() {
		for {
			msg, err := wire.Recv(vc)
			if err != nil {
				return
			}
			switch m := msg.(type) {
			case *wire.Batch:
				if f.delay > 0 {
					time.Sleep(f.delay)
				}
				outs, errStr := f.behave(m.ID, m.Tensors)
				f.served.Add(1)
				res := &wire.Result{ID: m.ID, Trace: m.Trace, VariantID: f.id, Err: errStr, Tensors: outs}
				if err := wire.Send(vc, res); err != nil {
					return
				}
			case *wire.Shutdown:
				_ = vc.Close()
				return
			}
		}
	}()
	return NewHandle(f.id, partition, "spec", mc)
}

// doubler returns a behavior that doubles the "x" input into "y", plus bias.
func doubler(bias float32) func(uint64, map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
	return func(_ uint64, in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
		x := in["x"]
		out := x.Clone()
		out.Apply(func(v float32) float32 { return 2*v + bias })
		return map[string]*tensor.Tensor{"y": out}, ""
	}
}

// incrementer maps "y" to "z" = y+1.
func incrementer() func(uint64, map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
	return func(_ uint64, in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
		y := in["y"]
		out := y.Clone()
		out.Apply(func(v float32) float32 { return v + 1 })
		return map[string]*tensor.Tensor{"z": out}, ""
	}
}

func input(v float32) map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{v, v}, 2)}
}

func buildEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(e.Stop)
	return e
}

func twoStageConfig(stage0 []*Handle, stage1 []*Handle) EngineConfig {
	return EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"z"},
		Stages: []StageSpec{
			{Inputs: []string{"x"}, Outputs: []string{"y"}, Handles: stage0},
			{Inputs: []string{"y"}, Outputs: []string{"z"}, Handles: stage1},
		},
	}
}

func TestFastPathPipeline(t *testing.T) {
	v0 := &fakeVariant{id: "s0", behave: doubler(0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	e := buildEngine(t, twoStageConfig([]*Handle{v0.start(t, 0)}, []*Handle{v1.start(t, 1)}))

	r, err := e.Infer(input(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["z"].At(0); got != 7 { // 2*3+1
		t.Fatalf("z = %v, want 7", got)
	}
	if evs := e.Events(); len(evs) != 0 {
		t.Fatalf("unexpected events %v", evs)
	}
}

func TestSlowPathUnanimousAgreement(t *testing.T) {
	vs := []*fakeVariant{
		{id: "a", behave: doubler(0)},
		{id: "b", behave: doubler(0)},
		{id: "c", behave: doubler(0)},
	}
	handles := []*Handle{vs[0].start(t, 0), vs[1].start(t, 0), vs[2].start(t, 0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	e := buildEngine(t, twoStageConfig(handles, []*Handle{v1.start(t, 1)}))

	r, err := e.Infer(input(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["z"].At(0); got != 5 {
		t.Fatalf("z = %v, want 5", got)
	}
}

func TestDivergenceHalts(t *testing.T) {
	vs := []*fakeVariant{
		{id: "good1", behave: doubler(0)},
		{id: "evil", behave: doubler(100)}, // corrupted outputs
		{id: "good2", behave: doubler(0)},
	}
	handles := []*Handle{vs[0].start(t, 0), vs[1].start(t, 0), vs[2].start(t, 0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	cfg := twoStageConfig(handles, []*Handle{v1.start(t, 1)})
	cfg.Response = Halt
	e := buildEngine(t, cfg)

	_, err := e.Infer(input(1))
	if err == nil {
		t.Fatal("divergence under Halt must fail the batch")
	}
	evs := e.Events()
	if len(evs) == 0 || evs[0].Kind != EventDivergence {
		t.Fatalf("events = %v", evs)
	}
	if len(evs[0].Variants) != 1 || evs[0].Variants[0] != "evil" {
		t.Fatalf("dissenters = %v, want [evil]", evs[0].Variants)
	}
	// Engine is halted: further submissions fail fast.
	if _, err := e.Submit(input(1)); err == nil {
		t.Fatal("halted engine accepted a new batch")
	}
}

func TestDivergenceDropVariantRecovers(t *testing.T) {
	evil := &fakeVariant{id: "evil", behave: doubler(100)}
	vs := []*fakeVariant{
		{id: "good1", behave: doubler(0)},
		evil,
		{id: "good2", behave: doubler(0)},
	}
	handles := []*Handle{vs[0].start(t, 0), vs[1].start(t, 0), vs[2].start(t, 0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	cfg := twoStageConfig(handles, []*Handle{v1.start(t, 1)})
	cfg.Response = DropVariant
	e := buildEngine(t, cfg)

	r, err := e.Infer(input(4))
	if err != nil {
		t.Fatalf("DropVariant must recover with the majority: %v", err)
	}
	if got := r.Tensors["z"].At(0); got != 9 { // clean value
		t.Fatalf("z = %v, want 9 (clean majority)", got)
	}
	kinds := map[EventKind]int{}
	for _, ev := range e.Events() {
		kinds[ev.Kind]++
	}
	if kinds[EventDivergence] == 0 || kinds[EventVariantDropped] == 0 {
		t.Fatalf("events = %v", e.Events())
	}
	// Follow-up batch runs without the dropped variant and stays clean.
	servedBefore := evil.served.Load()
	r2, err := e.Infer(input(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Tensors["z"].At(0); got != 11 {
		t.Fatalf("follow-up z = %v, want 11", got)
	}
	if evil.served.Load() != servedBefore {
		t.Fatal("dropped variant still received batches")
	}
}

func TestCrashedVariantIsDissent(t *testing.T) {
	vs := []*fakeVariant{
		{id: "good1", behave: doubler(0)},
		{id: "crasher", behave: func(uint64, map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
			return nil, "segfault"
		}},
		{id: "good2", behave: doubler(0)},
	}
	handles := []*Handle{vs[0].start(t, 0), vs[1].start(t, 0), vs[2].start(t, 0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	cfg := twoStageConfig(handles, []*Handle{v1.start(t, 1)})
	cfg.Response = ReportOnly
	e := buildEngine(t, cfg)

	r, err := e.Infer(input(1))
	if err != nil {
		t.Fatalf("majority should carry the batch: %v", err)
	}
	if got := r.Tensors["z"].At(0); got != 3 {
		t.Fatalf("z = %v, want 3", got)
	}
	evs := e.Events()
	if len(evs) == 0 || evs[0].Variants[0] != "crasher" {
		t.Fatalf("events = %v", evs)
	}
}

func TestAsyncForwardsOnQuorumBeforeStraggler(t *testing.T) {
	slow := &fakeVariant{id: "slow", behave: doubler(0), delay: 300 * time.Millisecond}
	vs := []*fakeVariant{
		{id: "fast1", behave: doubler(0)},
		{id: "fast2", behave: doubler(0)},
		slow,
	}
	handles := []*Handle{vs[0].start(t, 0), vs[1].start(t, 0), vs[2].start(t, 0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	cfg := twoStageConfig(handles, []*Handle{v1.start(t, 1)})
	cfg.Async = true
	e := buildEngine(t, cfg)

	start := time.Now()
	r, err := e.Infer(input(1))
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Fatalf("async took %v; quorum should release before the 300ms straggler", el)
	}
	if got := r.Tensors["z"].At(0); got != 3 {
		t.Fatalf("z = %v", got)
	}
}

func TestAsyncLateDissentDetected(t *testing.T) {
	lateEvil := &fakeVariant{id: "late-evil", behave: doubler(50), delay: 100 * time.Millisecond}
	vs := []*fakeVariant{
		{id: "fast1", behave: doubler(0)},
		{id: "fast2", behave: doubler(0)},
		lateEvil,
	}
	handles := []*Handle{vs[0].start(t, 0), vs[1].start(t, 0), vs[2].start(t, 0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	cfg := twoStageConfig(handles, []*Handle{v1.start(t, 1)})
	cfg.Async = true
	cfg.Response = ReportOnly
	e := buildEngine(t, cfg)

	r, err := e.Infer(input(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["z"].At(0); got != 3 {
		t.Fatalf("z = %v (quorum output must be clean)", got)
	}
	// The straggler's dissent surfaces retroactively.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range e.Events() {
			if ev.Kind == EventLateDissent && ev.Variants[0] == "late-evil" {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("late dissent never recorded; events = %v", e.Events())
}

func TestVariantConnectionLoss(t *testing.T) {
	// A variant whose connection dies mid-run is detected and, with a
	// single-variant stage, fails the batch.
	mon, varC := net.Pipe()
	mc := securechan.Plain(mon)
	go func() {
		vc := securechan.Plain(varC)
		if _, err := wire.Recv(vc); err == nil {
			_ = varC.Close() // die on the first batch
		}
	}()
	h := NewHandle("flaky", 0, "spec", mc)
	cfg := EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"y"},
		Stages:       []StageSpec{{Inputs: []string{"x"}, Outputs: []string{"y"}, Handles: []*Handle{h}}},
		Response:     ReportOnly,
	}
	e := buildEngine(t, cfg)
	if _, err := e.Infer(input(1)); err == nil {
		t.Fatal("batch should fail when its only variant dies")
	}
	found := false
	for _, ev := range e.Events() {
		if ev.Kind == EventVariantDown {
			found = true
		}
	}
	if !found {
		t.Fatalf("no VariantDown event: %v", e.Events())
	}
}

func TestPipelinedOrderingAndCompleteness(t *testing.T) {
	v0 := &fakeVariant{id: "s0", behave: doubler(0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	e := buildEngine(t, twoStageConfig([]*Handle{v0.start(t, 0)}, []*Handle{v1.start(t, 1)}))

	const n = 16
	want := make(map[uint64]float32, n)
	wantCh := make(chan struct{})
	go func() {
		defer close(wantCh)
		for i := 0; i < n; i++ {
			id, err := e.Submit(input(float32(i)))
			if err != nil {
				t.Error(err)
				return
			}
			want[id] = 2*float32(i) + 1
		}
	}()
	seen := map[uint64]float32{}
	for i := 0; i < n; i++ {
		r := <-e.Outputs()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		seen[r.ID] = r.Tensors["z"].At(0)
	}
	<-wantCh
	if len(seen) != n {
		t.Fatalf("got %d unique batches, want %d", len(seen), n)
	}
	for id, z := range seen {
		if z != want[id] {
			t.Fatalf("batch %d: z = %v, want %v (cross-batch mixup)", id, z, want[id])
		}
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{}); err == nil {
		t.Fatal("no stages accepted")
	}
	if _, err := NewEngine(EngineConfig{Stages: []StageSpec{{}}}); err == nil {
		t.Fatal("stage without variants accepted")
	}
}

func TestMVXConfigParseValidate(t *testing.T) {
	cfg := &MVXConfig{
		Model: "m",
		Plans: []PartitionPlan{{Variants: []string{"a"}}, {Variants: []string{"a", "b"}}},
		Vote:  check.Majority,
	}
	b, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseConfig(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != "m" || len(got.Plans) != 2 || !got.Plans[1].MVX() || got.Plans[0].MVX() {
		t.Fatalf("parsed = %+v", got)
	}
	if _, err := ParseConfig([]byte(`{"plans":[]}`)); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty plans: got %v", err)
	}
	if _, err := ParseConfig([]byte(`{"plans":[{"variants":[]}]}`)); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty variants: got %v", err)
	}
	if _, err := ParseConfig([]byte(`nope`)); err == nil {
		t.Fatal("junk accepted")
	}
}

// TestDAGStageRouting exercises non-chain partition topologies: stage 0
// feeds stages 1 and 2 in parallel; stage 3 joins both branches. The router
// must dispatch each stage exactly when all of its inputs exist.
func TestDAGStageRouting(t *testing.T) {
	src := &fakeVariant{id: "src", behave: func(_ uint64, in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
		x := in["x"].Clone()
		return map[string]*tensor.Tensor{"a": x, "b": x.Clone()}, ""
	}}
	left := &fakeVariant{id: "left", behave: func(_ uint64, in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
		out := in["a"].Clone()
		out.Apply(func(v float32) float32 { return v * 2 })
		return map[string]*tensor.Tensor{"l": out}, ""
	}}
	right := &fakeVariant{id: "right", behave: func(_ uint64, in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
		out := in["b"].Clone()
		out.Apply(func(v float32) float32 { return v * 3 })
		return map[string]*tensor.Tensor{"r": out}, ""
	}}
	join := &fakeVariant{id: "join", behave: func(_ uint64, in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
		out := in["l"].Clone()
		for i, v := range in["r"].Data() {
			out.Data()[i] += v
		}
		return map[string]*tensor.Tensor{"z": out}, ""
	}}
	cfg := EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"z"},
		Stages: []StageSpec{
			{Inputs: []string{"x"}, Outputs: []string{"a", "b"}, Handles: []*Handle{src.start(t, 0)}},
			{Inputs: []string{"a"}, Outputs: []string{"l"}, Handles: []*Handle{left.start(t, 1)}},
			{Inputs: []string{"b"}, Outputs: []string{"r"}, Handles: []*Handle{right.start(t, 2)}},
			{Inputs: []string{"l", "r"}, Outputs: []string{"z"}, Handles: []*Handle{join.start(t, 3)}},
		},
	}
	e := buildEngine(t, cfg)
	r, err := e.Infer(input(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["z"].At(0); got != 10 { // 2*2 + 3*2
		t.Fatalf("z = %v, want 10", got)
	}
}

// TestMaxInFlightBackpressure checks Submit blocks at the pipeline depth and
// unblocks as results drain.
func TestMaxInFlightBackpressure(t *testing.T) {
	slow := &fakeVariant{id: "slow", behave: doubler(0), delay: 30 * time.Millisecond}
	cfg := EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"y"},
		Stages: []StageSpec{
			{Inputs: []string{"x"}, Outputs: []string{"y"}, Handles: []*Handle{slow.start(t, 0)}},
		},
		MaxInFlight: 2,
	}
	e := buildEngine(t, cfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if _, err := e.Submit(input(1)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
		t.Fatal("4 submissions completed instantly despite MaxInFlight=2")
	case <-time.After(20 * time.Millisecond):
	}
	for i := 0; i < 4; i++ {
		r := <-e.Outputs()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	<-done
}

func TestCombinedAttestationAfterStartRejected(t *testing.T) {
	v0 := &fakeVariant{id: "s0", behave: doubler(0)}
	h := v0.start(t, 0)
	p, err := enclaveTestPlatform()
	if err != nil {
		t.Fatal(err)
	}
	encl, err := p.Launch(enclaveTestImage())
	if err != nil {
		t.Fatal(err)
	}
	ver := enclave.NewVerifier()
	ver.Trust(p)
	m := New(encl, ver)
	m.handles["s0"] = h
	m.bindings = append(m.bindings, BindingRecord{VariantID: "s0"})
	cfgJSON, _ := (&MVXConfig{Plans: []PartitionPlan{{Variants: []string{"spec"}}}}).Marshal()
	if err := m.Provision(&wire.Provision{Nonce: []byte{1}, Config: cfgJSON}); err != nil {
		t.Fatal(err)
	}
	eng, err := m.BuildEngine([]string{"x"}, []string{"y"},
		[]StageSpec{{Inputs: []string{"x"}, Outputs: []string{"y"}}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()
	if _, err := m.CombinedAttestation([]byte{9}); err == nil {
		t.Fatal("combined attestation allowed after engine start")
	}
}

func TestProvisionValidation(t *testing.T) {
	p, err := enclaveTestPlatform()
	if err != nil {
		t.Fatal(err)
	}
	encl, err := p.Launch(enclaveTestImage())
	if err != nil {
		t.Fatal(err)
	}
	m := New(encl, enclave.NewVerifier())
	good, _ := (&MVXConfig{Plans: []PartitionPlan{{Variants: []string{"a"}}}}).Marshal()
	if err := m.Provision(&wire.Provision{Config: good}); err == nil {
		t.Fatal("missing nonce accepted")
	}
	if err := m.Provision(&wire.Provision{Nonce: []byte{1}, Config: []byte("junk")}); err == nil {
		t.Fatal("junk config accepted")
	}
	if err := m.Provision(&wire.Provision{Nonce: []byte{1}, Config: good,
		Keys: map[string][]byte{"set0/p0/a": {1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if k, ok := m.KeyFor("set0/p0/a"); !ok || len(k) != 2 {
		t.Fatal("provisioned key not retrievable")
	}
}

func TestNoMajorityFailsBatchWithoutHalting(t *testing.T) {
	// Two variants disagreeing: no majority exists, so the batch fails
	// under ReportOnly, but the engine keeps serving later batches from the
	// surviving consensus once the dissenter is dropped.
	vs := []*fakeVariant{
		{id: "alpha", behave: doubler(0)},
		{id: "beta", behave: doubler(50)},
	}
	handles := []*Handle{vs[0].start(t, 0), vs[1].start(t, 0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	cfg := twoStageConfig(handles, []*Handle{v1.start(t, 1)})
	cfg.Response = ReportOnly
	e := buildEngine(t, cfg)

	if _, err := e.Infer(input(1)); err == nil {
		t.Fatal("2-way split must fail the batch (no agreeing majority)")
	}
	// Engine not halted under ReportOnly: a further batch still runs (and
	// fails the same way — but it is accepted and processed).
	if _, err := e.Submit(input(2)); err != nil {
		t.Fatalf("engine halted under ReportOnly: %v", err)
	}
	r := <-e.Outputs()
	if r.Err == nil {
		t.Fatal("second split batch unexpectedly succeeded")
	}
}
