package monitor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/transcript"
)

// StageSpec wires one pipeline stage: its checkpoint interface and the bound
// variant handles serving it.
type StageSpec struct {
	// Inputs and Outputs are the boundary tensor names of the partition.
	Inputs  []string
	Outputs []string
	// Handles are the variants executing this partition. One handle means
	// fast path; more activate MVX slow path.
	Handles []*Handle
}

// EngineConfig assembles an execution engine.
type EngineConfig struct {
	// GraphInputs and GraphOutputs name the model-level interface.
	GraphInputs  []string
	GraphOutputs []string
	// Stages in pipeline (topological) order.
	Stages []StageSpec
	// Policy is the checkpoint consistency policy.
	Policy check.Policy
	// Vote is the final voting strategy; zero means unanimous.
	Vote check.Strategy
	// Async enables asynchronous cross-validation (forward on majority
	// quorum, validate stragglers retroactively).
	Async bool
	// Response is the divergence reaction; zero means Halt.
	Response ResponseMode
	// MaxInFlight bounds concurrently processed batches (pipeline depth);
	// zero means 2×stages.
	MaxInFlight int
	// InflightWindow is the per-stage credit budget: the maximum number of
	// outstanding (dispatched, unresolved) checkpoint gathers a stage may
	// hold before further batches queue at that stage. Deep pipelines keep
	// every variant busy while per-stage buffering — and therefore straggler
	// exposure on async forwarding — stays bounded. Zero disables the window
	// (only the global MaxInFlight limit applies).
	InflightWindow int
	// StageTimeout bounds how long a checkpoint waits for stragglers. When a
	// variant has not reported StageTimeout after its batch was dispatched,
	// it is declared dead (EventVariantTimeout) and the gather proceeds with
	// the survivors — a hung variant can no longer stall its stage forever.
	// Zero disables the deadline.
	StageTimeout time.Duration
	// Replace, when set, provides hot replacement for dead variant slots
	// (§2.4 recover): the engine calls it off the checkpoint path whenever a
	// slot dies, and installs the returned handle — already attested and
	// bound by the caller — into the slot at the next checkpoint boundary.
	// The monitor wires this to its spare-Assignment pool under the Recover
	// response mode.
	Replace ReplaceFunc
	// DigestSink, when set, receives the canonical digest of every forwarded
	// checkpoint (stage worker context, so implementations must not block):
	// the per-checkpoint fingerprints the cluster tier streams between
	// replicas instead of tensors. Nil (the default) skips digest
	// computation entirely — single-node engines pay nothing for it.
	DigestSink func(batchID uint64, stage int, digest check.Digest)
	// Transcript, when set, receives the verifiable-inference transcript
	// events: batch submission (trace + inputs), every forwarded checkpoint
	// digest, and delivery (outputs + worst ladder rung). All calls are
	// non-blocking channel sends into the recorder's worker — the same
	// off-hot-path discipline as the event bus — so serving latency is
	// unchanged whether or not a transcript is kept.
	Transcript *transcript.Recorder
	// Metrics receives the engine's telemetry series; nil uses
	// telemetry.Default. Registration happens once at construction — the hot
	// path only ever touches pre-resolved atomic handles.
	Metrics *telemetry.Registry
	// Tracer receives the engine's batch spans; nil uses
	// telemetry.DefaultTracer.
	Tracer *telemetry.Tracer
}

// ReplaceFunc obtains a bound replacement handle for a dead variant slot.
// sinceBatch is the last batch dispatched at the stage before the death; the
// replacement joins at the next checkpoint (it will only ever observe batch
// IDs greater than sinceBatch).
type ReplaceFunc func(stage, slot int, deadID string, sinceBatch uint64) (*Handle, error)

// BatchResult is the engine's per-batch outcome.
type BatchResult struct {
	ID      uint64
	Tensors map[string]*tensor.Tensor
	Err     error
	// Latency is submission-to-completion time.
	Latency time.Duration
}

// EventKind classifies engine events.
type EventKind int

// Event kinds.
const (
	EventDivergence       EventKind = iota + 1 // checkpoint vote failed
	EventLateDissent                           // async straggler disagreed after forwarding
	EventVariantDown                           // variant connection lost
	EventVariantDropped                        // variant excluded by response policy
	EventVariantTimeout                        // variant missed the stage deadline
	EventVariantReplaced                       // spare bound into a dead slot
	EventReplaceFailed                         // recovery could not obtain a replacement
	EventLadderDemoted                         // stage degraded a ladder rung
	EventLadderPromoted                        // stage recovered a ladder rung
	EventSpareProvisioned                      // spare pool grew by one pre-attested TEE
	EventFlightIncident                        // flight recorder froze a before/after window

	// eventKindEnd is one past the last defined kind. The severity/string
	// exhaustiveness test walks [1, eventKindEnd) — add new kinds above this
	// line and give them a String() case and a Severity() class, or that test
	// fails.
	eventKindEnd
)

func (k EventKind) String() string {
	switch k {
	case EventDivergence:
		return "divergence"
	case EventLateDissent:
		return "late-dissent"
	case EventVariantDown:
		return "variant-down"
	case EventVariantDropped:
		return "variant-dropped"
	case EventVariantTimeout:
		return "variant-timeout"
	case EventVariantReplaced:
		return "variant-replaced"
	case EventReplaceFailed:
		return "replace-failed"
	case EventLadderDemoted:
		return "ladder-demoted"
	case EventLadderPromoted:
		return "ladder-promoted"
	case EventSpareProvisioned:
		return "spare-provisioned"
	case EventFlightIncident:
		return "flight-incident"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Severity classifies the kind for operator-facing streams: divergence
// signals bear on the security argument itself; departures, timeouts and
// demotions are degraded-but-operating; recoveries are routine lifecycle.
func (k EventKind) Severity() telemetry.Severity {
	switch k {
	case EventDivergence, EventLateDissent:
		return telemetry.SevSecurity
	case EventVariantDown, EventVariantDropped, EventVariantTimeout,
		EventReplaceFailed, EventLadderDemoted, EventFlightIncident:
		return telemetry.SevWarn
	case EventVariantReplaced, EventLadderPromoted, EventSpareProvisioned:
		return telemetry.SevInfo
	default:
		return 0
	}
}

// LadderRung is a stage's position on the degradation ladder: the engine
// demotes a stage as variants die and promotes it back when replacements
// arrive, recording an event at every transition. Higher rungs are healthier.
type LadderRung int

// Ladder rungs, worst to best.
const (
	// LadderHalted: no live variants; batches reaching the stage fail.
	LadderHalted LadderRung = iota
	// LadderSingle: one survivor of a multi-variant stage serves on the fast
	// path — results are unverified (report-only territory).
	LadderSingle
	// LadderQuorum: some variants lost but more than one lives; voting
	// continues over the survivors.
	LadderQuorum
	// LadderFull: every configured variant is live.
	LadderFull
)

func (r LadderRung) String() string {
	switch r {
	case LadderHalted:
		return "halted"
	case LadderSingle:
		return "single"
	case LadderQuorum:
		return "quorum"
	case LadderFull:
		return "full"
	default:
		return fmt.Sprintf("LadderRung(%d)", int(r))
	}
}

// rungFor places a stage with live of size configured variants on the ladder.
func rungFor(live, size int) LadderRung {
	switch {
	case live <= 0:
		return LadderHalted
	case live >= size:
		return LadderFull
	case live == 1:
		return LadderSingle
	default:
		return LadderQuorum
	}
}

// Event records a security-relevant engine occurrence.
type Event struct {
	Kind    EventKind
	Stage   int
	BatchID uint64
	// Variants lists the dissenting/affected variant IDs.
	Variants []string
	Detail   string
	Time     time.Time
}

// MarshalJSON renders the event for operator streams (/events SSE) with the
// kind spelled out and its severity classification attached.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Time     time.Time `json:"time"`
		Kind     string    `json:"kind"`
		Severity string    `json:"severity"`
		Stage    int       `json:"stage"`
		BatchID  uint64    `json:"batch_id"`
		Variants []string  `json:"variants,omitempty"`
		Detail   string    `json:"detail,omitempty"`
	}{e.Time, e.Kind.String(), e.Kind.Severity().String(), e.Stage, e.BatchID, e.Variants, e.Detail})
}

// Engine executes batches through the partitioned variant pipeline. Create
// with NewEngine, start with Start, feed with Submit, consume Outputs.
type Engine struct {
	cfg    EngineConfig
	stages []*stage

	routerCh  chan routerMsg
	outCh     chan BatchResult
	slots     chan struct{}
	replReqCh chan replaceReq

	// ladder holds each stage's current degradation rung (written by the
	// stage worker, read by Ladder).
	ladder []atomic.Int32

	// dynWindow is the effective per-stage credit window, initialized from
	// EngineConfig.InflightWindow and retunable live (SetInflightWindow) by
	// the adaptive controller. Stage workers read it on every drain, so a
	// retune applies at the next dispatch opportunity.
	dynWindow atomic.Int32

	// eventBus fans security events out to subscribers (the /events SSE
	// stream) without ever blocking a producer; its ring also backs the
	// Events() snapshot. met and tracer are the pre-resolved telemetry
	// handles — registered once at construction, recorded into lock-free.
	eventBus *telemetry.Bus[Event]
	met      *engineMetrics
	tracer   *telemetry.Tracer

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// fwdWg tracks handle forwarders, which — unlike the fixed worker set in
	// wg — are also spawned dynamically by the replacer during recovery.
	fwdWg sync.WaitGroup

	mu      sync.Mutex
	failed  error
	started bool
}

// batchIDs issues process-unique batch identifiers so results straggling
// across an engine rebuild (variant updates) can never be confused with a
// new engine's batches.
var batchIDs atomic.Uint64

type routerMsg struct {
	// submit
	submit  bool
	id      uint64
	trace   uint64
	tensors map[string]*tensor.Tensor
	start   time.Time
	// stage completion
	stageIdx int
	done     bool
	outs     map[string]*tensor.Tensor
	err      error
	// failure escalation
	fatal error
}

type stage struct {
	idx     int
	spec    StageSpec
	workCh  chan stageWork
	resCh   chan handleResult
	replCh  chan stageReplacement
	done    chan struct{}
	mvxSize int
}

type stageWork struct {
	id      uint64
	trace   uint64
	tensors map[string]*tensor.Tensor
}

// replaceReq asks the replacer for a spare to fill a dead slot.
type replaceReq struct {
	s          *stage
	slot       int
	deadID     string
	sinceBatch uint64
}

// stageReplacement delivers a bound replacement handle to its stage worker.
type stageReplacement struct {
	slot int
	h    *Handle
}

// ErrEngineStopped is returned by Submit after Stop or a fatal failure.
var ErrEngineStopped = errors.New("monitor: engine stopped")

// NewEngine validates cfg and builds an engine (not yet running).
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if len(cfg.Stages) == 0 {
		return nil, fmt.Errorf("%w: no stages", ErrConfig)
	}
	for i, s := range cfg.Stages {
		if len(s.Handles) == 0 {
			return nil, fmt.Errorf("%w: stage %d has no variants", ErrConfig, i)
		}
	}
	if cfg.Vote == 0 {
		cfg.Vote = check.Unanimous
	}
	if cfg.Response == 0 {
		cfg.Response = Halt
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 2 * len(cfg.Stages)
	}
	if len(cfg.Policy.Criteria) == 0 {
		cfg.Policy = check.DefaultPolicy()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.Default
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = telemetry.DefaultTracer
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:       cfg,
		routerCh:  make(chan routerMsg, cfg.MaxInFlight*(len(cfg.Stages)+2)+16),
		outCh:     make(chan BatchResult, cfg.MaxInFlight+1),
		slots:     make(chan struct{}, cfg.MaxInFlight),
		replReqCh: make(chan replaceReq, 4*len(cfg.Stages)+16),
		ladder:    make([]atomic.Int32, len(cfg.Stages)),
		eventBus:  telemetry.NewBus[Event](4096),
		met:       newEngineMetrics(reg, len(cfg.Stages)),
		tracer:    tracer,
		ctx:       ctx,
		cancel:    cancel,
	}
	e.dynWindow.Store(int32(cfg.InflightWindow))
	for i, s := range cfg.Stages {
		e.stages = append(e.stages, &stage{
			idx:     i,
			spec:    s,
			workCh:  make(chan stageWork, cfg.MaxInFlight),
			resCh:   make(chan handleResult, cfg.MaxInFlight*len(s.Handles)+4),
			replCh:  make(chan stageReplacement, len(s.Handles)+1),
			done:    make(chan struct{}),
			mvxSize: len(s.Handles),
		})
		e.ladder[i].Store(int32(rungFor(len(s.Handles), len(s.Handles))))
	}
	return e, nil
}

// Start launches the router, stage workers and handle readers.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()

	for _, s := range e.stages {
		for _, h := range s.spec.Handles {
			e.startForwarder(s, h)
		}
		s := s
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.stageWorker(s)
		}()
	}
	if e.cfg.Replace != nil {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.replacer()
		}()
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.router()
	}()
}

// startForwarder launches the handle-owned reader (idempotent) and a
// forwarder moving the handle's results into the stage's merge channel for
// this engine's lifetime; the reader survives engine teardown (variant
// updates).
func (e *Engine) startForwarder(s *stage, h *Handle) {
	h.startReader()
	e.fwdWg.Add(1)
	go func() {
		defer e.fwdWg.Done()
		for {
			select {
			case <-e.ctx.Done():
				return
			case r := <-h.results:
				select {
				case s.resCh <- r:
				case <-e.ctx.Done():
					return
				}
			}
		}
	}()
}

// replacer serves hot-replacement requests off the checkpoint path: it asks
// cfg.Replace for a replacement handle (attested and bound by the caller —
// the monitor's spare pool appends the new binding to its log, §4.3) and
// hands it to the requesting stage, which installs it at the next checkpoint
// boundary.
func (e *Engine) replacer() {
	for {
		select {
		case <-e.ctx.Done():
			return
		case req := <-e.replReqCh:
			h, err := e.cfg.Replace(req.s.idx, req.slot, req.deadID, req.sinceBatch)
			if err != nil {
				e.recordEvent(Event{Kind: EventReplaceFailed, Stage: req.s.idx,
					Variants: []string{req.deadID}, Detail: err.Error()})
				continue
			}
			e.startForwarder(req.s, h)
			e.recordEvent(Event{Kind: EventVariantReplaced, Stage: req.s.idx,
				Variants: []string{req.deadID, h.ID()},
				Detail: fmt.Sprintf("slot %d: %s replaced by %s, resuming after batch %d",
					req.slot, req.deadID, h.ID(), req.sinceBatch)})
			select {
			case req.s.replCh <- stageReplacement{slot: req.slot, h: h}:
			case <-e.ctx.Done():
				return
			}
		}
	}
}

// Stop terminates the engine and shuts down the variants. Pending batches
// are abandoned.
func (e *Engine) Stop() {
	e.StopKeepVariants()
	for _, s := range e.stages {
		for _, h := range s.spec.Handles {
			h.shutdown()
		}
	}
}

// StopKeepVariants terminates the engine's goroutines but leaves the variant
// TEEs running — the quiesce step of the update flows (§4.3), after which
// individual variants can be unbound/rebound and a new engine built.
func (e *Engine) StopKeepVariants() {
	e.cancel()
	// Workers first: the replacer (tracked in wg) spawns forwarders, so every
	// fwdWg.Add happens before wg.Wait returns.
	e.wg.Wait()
	e.fwdWg.Wait()
}

// Outputs delivers one BatchResult per submitted batch, in completion order.
func (e *Engine) Outputs() <-chan BatchResult { return e.outCh }

// Started reports whether Start has been called.
func (e *Engine) Started() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.started
}

// Events returns a deep-copied snapshot of the retained security events:
// mutating a returned event (including its Variants slice) can never alias
// engine state. The backing store is a fixed ring — the oldest events are
// evicted once it fills; Total/Dropped accounting lives on EventBus.
func (e *Engine) Events() []Event {
	evs := e.eventBus.Snapshot()
	for i := range evs {
		evs[i].Variants = append([]string(nil), evs[i].Variants...)
	}
	return evs
}

// EventBus exposes the engine's event stream for subscribers (the monitor's
// /events SSE endpoint). Subscribers that fall behind lose events — the
// engine never blocks on them.
func (e *Engine) EventBus() *telemetry.Bus[Event] { return e.eventBus }

// InflightWindow returns the effective per-stage credit window.
func (e *Engine) InflightWindow() int { return int(e.dynWindow.Load()) }

// SetInflightWindow retunes the per-stage credit window live (the adaptive
// controller's actuator). n < 0 clamps to 0, which disables the window; the
// stage workers pick the new budget up at their next pending drain. Shrinking
// below the current outstanding-gather count simply pauses dispatch until
// enough gathers resolve — credits are never revoked mid-gather.
func (e *Engine) SetInflightWindow(n int) {
	if n < 0 {
		n = 0
	}
	e.dynWindow.Store(int32(n))
}

// Ladder returns each stage's current degradation rung. Transitions are also
// recorded as EventLadderDemoted/EventLadderPromoted events.
func (e *Engine) Ladder() []LadderRung {
	out := make([]LadderRung, len(e.ladder))
	for i := range e.ladder {
		out[i] = LadderRung(e.ladder[i].Load())
	}
	return out
}

func (e *Engine) setLadder(stage int, r LadderRung) {
	e.ladder[stage].Store(int32(r))
	e.met.stages[stage].ladder.Set(int64(r))
}

// worstRung returns the lowest (least healthy) stage rung — the engine-wide
// health level a transcript leaf records at delivery.
func (e *Engine) worstRung() LadderRung {
	worst := LadderFull
	for i := range e.ladder {
		if r := LadderRung(e.ladder[i].Load()); r < worst {
			worst = r
		}
	}
	return worst
}

func (e *Engine) recordEvent(ev Event) {
	ev.Time = time.Now()
	e.eventBus.Publish(ev)
	e.met.eventsPublished.Inc()
	e.met.eventsDropped.Set(int64(e.eventBus.Dropped()))
}

// Submit enqueues one batch of model inputs, blocking while the pipeline is
// at MaxInFlight depth. It returns the assigned batch ID.
func (e *Engine) Submit(inputs map[string]*tensor.Tensor) (uint64, error) {
	// The batch-scoped trace ID rides the wire header to every variant and
	// back; zero (telemetry disabled) turns off all span recording downstream.
	return e.SubmitTraced(inputs, telemetry.NewTraceID())
}

// SubmitTraced is Submit under a caller-minted trace ID: a cluster router
// mints one ID per routed batch and threads it through every replica engine
// it touches, so router- and replica-side spans stitch into one cross-node
// tree. Zero disables span recording for the batch (the kill-switch
// sentinel, same as a disabled process).
func (e *Engine) SubmitTraced(inputs map[string]*tensor.Tensor, trace uint64) (uint64, error) {
	e.mu.Lock()
	if err := e.failed; err != nil {
		e.mu.Unlock()
		return 0, err
	}
	e.mu.Unlock()
	id := batchIDs.Add(1)

	select {
	case e.slots <- struct{}{}:
	case <-e.ctx.Done():
		return 0, ErrEngineStopped
	}
	select {
	case e.routerCh <- routerMsg{submit: true, id: id, trace: trace, tensors: inputs, start: time.Now()}:
		return id, nil
	case <-e.ctx.Done():
		return 0, ErrEngineStopped
	}
}

// Tracer returns the span ring this engine records into — the harvest point
// for cluster trace federation (a replica server collects a batch's spans
// from here and ships them to the router).
func (e *Engine) Tracer() *telemetry.Tracer { return e.tracer }

// Infer runs one batch synchronously (sequential execution): it submits and
// waits for that batch's result. Do not mix Infer with concurrent Submit
// callers consuming Outputs.
func (e *Engine) Infer(inputs map[string]*tensor.Tensor) (BatchResult, error) {
	id, err := e.Submit(inputs)
	if err != nil {
		return BatchResult{}, err
	}
	for {
		select {
		case r, ok := <-e.outCh:
			if !ok {
				return BatchResult{}, ErrEngineStopped
			}
			if r.ID == id {
				return r, r.Err
			}
			// Stale result from an earlier failed batch; keep draining.
		case <-e.ctx.Done():
			return BatchResult{}, ErrEngineStopped
		}
	}
}

// --- router --------------------------------------------------------------------

type batchState struct {
	tensors    map[string]*tensor.Tensor
	dispatched []bool
	start      time.Time
	trace      uint64
	failed     error
	delivered  bool
}

func (e *Engine) router() {
	batches := make(map[uint64]*batchState)
	for {
		select {
		case <-e.ctx.Done():
			return
		case m := <-e.routerCh:
			switch {
			case m.fatal != nil:
				e.mu.Lock()
				if e.failed == nil {
					e.failed = m.fatal
				}
				e.mu.Unlock()
				// Fail all in-flight batches.
				for id, b := range batches {
					if !b.delivered {
						b.delivered = true
						e.deliver(BatchResult{ID: id, Err: m.fatal}, b.trace, b.start)
					}
					delete(batches, id)
				}
			case m.submit:
				// Transcript leaf opens here: the trace ID and input tensors
				// are bound before any variant sees the batch. The input map
				// is the engine's private copy target, so the recorder can
				// hash the caller's map asynchronously.
				e.cfg.Transcript.Begin(m.trace, m.id, m.tensors)
				b := &batchState{
					tensors:    make(map[string]*tensor.Tensor, len(m.tensors)+8),
					dispatched: make([]bool, len(e.stages)),
					start:      m.start,
					trace:      m.trace,
				}
				for k, v := range m.tensors {
					b.tensors[k] = v
				}
				batches[m.id] = b
				e.dispatchReady(m.id, b)
			case m.done:
				b, ok := batches[m.id]
				if !ok {
					break // batch already failed/delivered
				}
				if m.err != nil {
					b.delivered = true
					e.deliver(BatchResult{ID: m.id, Err: m.err}, b.trace, b.start)
					delete(batches, m.id)
					if e.respMode() == Halt {
						e.failAll(batches, m.err)
					}
					break
				}
				for k, v := range m.outs {
					b.tensors[k] = v
				}
				e.dispatchReady(m.id, b)
				if e.complete(b) {
					out := make(map[string]*tensor.Tensor, len(e.cfg.GraphOutputs))
					for _, name := range e.cfg.GraphOutputs {
						out[name] = b.tensors[name]
					}
					b.delivered = true
					e.deliver(BatchResult{ID: m.id, Tensors: out}, b.trace, b.start)
					delete(batches, m.id)
				}
			}
		}
	}
}

func (e *Engine) respMode() ResponseMode { return e.cfg.Response }

func (e *Engine) failAll(batches map[uint64]*batchState, cause error) {
	err := fmt.Errorf("monitor: pipeline halted: %w", cause)
	e.mu.Lock()
	if e.failed == nil {
		e.failed = err
	}
	e.mu.Unlock()
	for id, b := range batches {
		if !b.delivered {
			b.delivered = true
			e.deliver(BatchResult{ID: id, Err: err}, b.trace, b.start)
		}
		delete(batches, id)
	}
}

// deliver stamps the batch latency from a single clock read (shared with the
// root span's end) and hands the result to the consumer.
func (e *Engine) deliver(r BatchResult, trace uint64, start time.Time) {
	now := time.Now()
	r.Latency = now.Sub(start)
	if t := e.cfg.Transcript; t != nil {
		if r.Err != nil {
			// Failed batches leave no leaf; drop the accumulated state.
			t.Abort(r.ID)
		} else {
			t.Deliver(r.ID, r.Tensors, uint8(e.worstRung()), "")
		}
	}
	if telemetry.Enabled() {
		e.met.batches.Inc()
		if r.Err != nil {
			e.met.batchErrors.Inc()
		}
		e.met.batchNs.Observe(r.Latency.Nanoseconds())
		e.tracer.Record(telemetry.Span{
			Trace: trace, Batch: r.ID, Name: "batch", Stage: -1,
			Start: start.UnixNano(), End: now.UnixNano(),
		})
	}
	select {
	case e.outCh <- r:
	case <-e.ctx.Done():
		return
	}
	select {
	case <-e.slots:
	default:
	}
}

func (e *Engine) complete(b *batchState) bool {
	for _, name := range e.cfg.GraphOutputs {
		if _, ok := b.tensors[name]; !ok {
			return false
		}
	}
	return true
}

func (e *Engine) dispatchReady(id uint64, b *batchState) {
	for i, s := range e.stages {
		if b.dispatched[i] {
			continue
		}
		ready := true
		for _, in := range s.spec.Inputs {
			if _, ok := b.tensors[in]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		b.dispatched[i] = true
		ins := make(map[string]*tensor.Tensor, len(s.spec.Inputs))
		for _, in := range s.spec.Inputs {
			ins[in] = b.tensors[in]
		}
		select {
		case s.workCh <- stageWork{id: id, trace: b.trace, tensors: ins}:
		case <-e.ctx.Done():
			return
		}
	}
}
