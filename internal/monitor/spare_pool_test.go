package monitor

import (
	"errors"
	"testing"
)

// TestSparePoolHooks pins the controller-facing spare pool actuators:
// ProvisionSpare delegates to the installed factory (error without one) and
// RetireSpare pops the most recent unclaimed spare, closing its channel.
func TestSparePoolHooks(t *testing.T) {
	m := New(nil, nil)

	if err := m.ProvisionSpare(0); !errors.Is(err, ErrNoSpareFactory) {
		t.Fatalf("ProvisionSpare without factory = %v, want ErrNoSpareFactory", err)
	}
	if m.RetireSpare() {
		t.Fatal("RetireSpare on empty pool returned true")
	}

	var calls []int
	m.SetSpareFactory(func(partition int) error {
		calls = append(calls, partition)
		m.AddSpare(newScriptConn("spare"), Assignment{Partition: partition})
		return nil
	})
	if err := m.ProvisionSpare(1); err != nil {
		t.Fatal(err)
	}
	if err := m.ProvisionSpare(-1); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != 1 || calls[1] != -1 {
		t.Fatalf("factory calls = %v, want [1 -1]", calls)
	}
	if got := m.SpareCount(); got != 2 {
		t.Fatalf("SpareCount = %d, want 2", got)
	}

	if !m.RetireSpare() {
		t.Fatal("RetireSpare with spares returned false")
	}
	if got := m.SpareCount(); got != 1 {
		t.Fatalf("SpareCount after retire = %d, want 1", got)
	}
}
