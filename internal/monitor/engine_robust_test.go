package monitor

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/tensor"
)

// waitEvent polls the engine until an event of the kind appears (the stage
// worker records events asynchronously to batch delivery).
func waitEvent(t *testing.T, e *Engine, kind EventKind) Event {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range e.Events() {
			if ev.Kind == kind {
				return ev
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("event %v never recorded; have %v", kind, e.Events())
	return Event{}
}

func hasEvent(e *Engine, kind EventKind) bool {
	for _, ev := range e.Events() {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

func oneStageConfig(handles []*Handle) EngineConfig {
	return EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"y"},
		Stages: []StageSpec{
			{Inputs: []string{"x"}, Outputs: []string{"y"}, Handles: handles},
		},
	}
}

// TestStageTimeoutCompletesViaQuorum is the straggler-deadline core case: one
// of three variants hangs mid-batch, and the batch must complete within
// StageTimeout+ε via the surviving quorum instead of stalling forever.
func TestStageTimeoutCompletesViaQuorum(t *testing.T) {
	hung := &fakeVariant{id: "hung", behave: doubler(0), delay: 10 * time.Second}
	vs := []*fakeVariant{
		{id: "a", behave: doubler(0)},
		{id: "b", behave: doubler(0)},
	}
	handles := []*Handle{vs[0].start(t, 0), vs[1].start(t, 0), hung.start(t, 0)}
	cfg := oneStageConfig(handles)
	cfg.Vote = check.Majority
	cfg.Response = DropVariant
	cfg.StageTimeout = 100 * time.Millisecond
	e := buildEngine(t, cfg)

	start := time.Now()
	r, err := e.Infer(input(3))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if got := r.Tensors["y"].At(0); got != 6 {
		t.Fatalf("y = %v, want 6", got)
	}
	// ε: sweep granularity (StageTimeout/8) plus scheduling slack.
	if elapsed > cfg.StageTimeout+400*time.Millisecond {
		t.Fatalf("batch took %v, want ~StageTimeout (%v)", elapsed, cfg.StageTimeout)
	}
	ev := waitEvent(t, e, EventVariantTimeout)
	if len(ev.Variants) != 1 || ev.Variants[0] != "hung" {
		t.Fatalf("timeout event names %v, want [hung]", ev.Variants)
	}
	dem := waitEvent(t, e, EventLadderDemoted)
	if !strings.Contains(dem.Detail, "full→quorum") {
		t.Fatalf("demotion detail %q, want full→quorum", dem.Detail)
	}
	if got := e.Ladder()[0]; got != LadderQuorum {
		t.Fatalf("ladder = %v, want quorum", got)
	}
	// The hung slot is dead: later batches bypass it entirely.
	r2, err := e.Infer(input(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Tensors["y"].At(0); got != 10 {
		t.Fatalf("y = %v, want 10", got)
	}
}

// TestStageTimeoutDisabledByDefault pins that a zero StageTimeout keeps the
// legacy semantics: no deadline machinery, no timeout events.
func TestStageTimeoutDisabledByDefault(t *testing.T) {
	slow := &fakeVariant{id: "slow", behave: doubler(0), delay: 150 * time.Millisecond}
	quick := &fakeVariant{id: "quick", behave: doubler(0)}
	cfg := oneStageConfig([]*Handle{quick.start(t, 0), slow.start(t, 0)})
	e := buildEngine(t, cfg)

	r, err := e.Infer(input(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["y"].At(0); got != 4 {
		t.Fatalf("y = %v, want 4", got)
	}
	if hasEvent(e, EventVariantTimeout) {
		t.Fatalf("timeout event with StageTimeout disabled: %v", e.Events())
	}
}

// spareFactory returns a ReplaceFunc vending fake replacement variants and
// counting how many were taken.
func spareFactory(t *testing.T, taken *atomic.Int64) ReplaceFunc {
	return func(stage, slot int, deadID string, sinceBatch uint64) (*Handle, error) {
		n := taken.Add(1)
		sp := &fakeVariant{id: fmt.Sprintf("spare-%d", n), behave: doubler(0)}
		return sp.start(t, stage), nil
	}
}

// TestHotReplacementRestoresFullRung kills a dissenting variant under Recover
// and verifies a spare is promoted into the dead slot: replacement event,
// ladder back to full, and the replacement actually serving batches.
func TestHotReplacementRestoresFullRung(t *testing.T) {
	evil := &fakeVariant{id: "evil", behave: func(id uint64, in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
		if in["x"].At(0) == 13 {
			return nil, "simulated crash"
		}
		return doubler(0)(id, in)
	}}
	vs := []*fakeVariant{
		{id: "a", behave: doubler(0)},
		{id: "b", behave: doubler(0)},
	}
	handles := []*Handle{vs[0].start(t, 0), vs[1].start(t, 0), evil.start(t, 0)}
	cfg := oneStageConfig(handles)
	cfg.Response = Recover
	var taken atomic.Int64
	cfg.Replace = spareFactory(t, &taken)
	e := buildEngine(t, cfg)

	if _, err := e.Infer(input(1)); err != nil {
		t.Fatal(err)
	}
	// Trigger the crash: unanimous vote fails, Recover drops the dissenter
	// and requests a spare; the surviving majority still answers the batch.
	r, err := e.Infer(input(13))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["y"].At(0); got != 26 {
		t.Fatalf("y = %v, want 26", got)
	}
	rep := waitEvent(t, e, EventVariantReplaced)
	if len(rep.Variants) != 2 || rep.Variants[0] != "evil" {
		t.Fatalf("replacement event %v, want [evil spare-1]", rep.Variants)
	}
	waitEvent(t, e, EventLadderPromoted)
	if got := e.Ladder()[0]; got != LadderFull {
		t.Fatalf("ladder = %v, want full after replacement", got)
	}
	// The spare serves subsequent batches.
	deadline := time.Now().Add(3 * time.Second)
	for taken.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// The trigger batch records exactly one divergence; the replacement must
	// not add more (it computes the same function as the survivors).
	divergencesBefore := 0
	for _, ev := range e.Events() {
		if ev.Kind == EventDivergence {
			divergencesBefore++
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := e.Infer(input(float32(i + 20))); err != nil {
			t.Fatal(err)
		}
	}
	divergencesAfter := 0
	for _, ev := range e.Events() {
		if ev.Kind == EventDivergence {
			divergencesAfter++
		}
	}
	if divergencesAfter != divergencesBefore {
		t.Fatalf("replacement diverged: %d new divergence events", divergencesAfter-divergencesBefore)
	}
	if got := taken.Load(); got != 1 {
		t.Fatalf("spares taken = %d, want 1", got)
	}
}

// TestReplaceFailureRecorded pins the failure path: Recover with an empty
// spare pool records EventReplaceFailed and the stage keeps serving degraded.
func TestReplaceFailureRecorded(t *testing.T) {
	evil := &fakeVariant{id: "evil", behave: doubler(100)}
	vs := []*fakeVariant{
		{id: "a", behave: doubler(0)},
		{id: "b", behave: doubler(0)},
	}
	cfg := oneStageConfig([]*Handle{vs[0].start(t, 0), vs[1].start(t, 0), evil.start(t, 0)})
	cfg.Response = Recover
	cfg.Replace = func(stage, slot int, deadID string, sinceBatch uint64) (*Handle, error) {
		return nil, fmt.Errorf("no spare for partition %d", stage)
	}
	e := buildEngine(t, cfg)

	r, err := e.Infer(input(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["y"].At(0); got != 4 {
		t.Fatalf("y = %v, want 4 (majority)", got)
	}
	fail := waitEvent(t, e, EventReplaceFailed)
	if len(fail.Variants) != 1 || fail.Variants[0] != "evil" {
		t.Fatalf("replace-failed names %v, want [evil]", fail.Variants)
	}
	if got := e.Ladder()[0]; got != LadderQuorum {
		t.Fatalf("ladder = %v, want quorum (degraded, no spare)", got)
	}
}

// TestDispatchPruneRecordsEvent pins the silent-drop fix: a handle dropped
// outside the engine (membership policy) is pruned at dispatch WITH an
// EventVariantDown in the log, not silently.
func TestDispatchPruneRecordsEvent(t *testing.T) {
	vs := []*fakeVariant{
		{id: "a", behave: doubler(0)},
		{id: "b", behave: doubler(0)},
	}
	ha, hb := vs[0].start(t, 0), vs[1].start(t, 0)
	cfg := oneStageConfig([]*Handle{ha, hb})
	e := buildEngine(t, cfg)

	// A first batch guarantees the stage worker has scanned its live set, so
	// the later exclusion is observed on the dispatch path, not at startup.
	if _, err := e.Infer(input(1)); err != nil {
		t.Fatal(err)
	}
	hb.drop() // external exclusion, e.g. another engine's response policy

	r, err := e.Infer(input(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["y"].At(0); got != 8 {
		t.Fatalf("y = %v, want 8", got)
	}
	ev := waitEvent(t, e, EventVariantDown)
	if len(ev.Variants) != 1 || ev.Variants[0] != "b" {
		t.Fatalf("prune event names %v, want [b]", ev.Variants)
	}
	if !strings.Contains(ev.Detail, "excluded at dispatch") {
		t.Fatalf("prune event detail %q", ev.Detail)
	}
	dem := waitEvent(t, e, EventLadderDemoted)
	if !strings.Contains(dem.Detail, "single-variant fast path") {
		t.Fatalf("demotion to single lacks fast-path warning: %q", dem.Detail)
	}
}

// TestForwardedGatherPurgedOnDeadline pins the async leak fix: a gather whose
// quorum already forwarded must still be finalized when its straggler never
// reports — the deadline declares the straggler dead and the gather is
// retired instead of leaking for the stage's lifetime.
func TestForwardedGatherPurgedOnDeadline(t *testing.T) {
	straggler := &fakeVariant{id: "straggler", behave: doubler(0), delay: 10 * time.Second}
	vs := []*fakeVariant{
		{id: "a", behave: doubler(0)},
		{id: "b", behave: doubler(0)},
	}
	cfg := oneStageConfig([]*Handle{vs[0].start(t, 0), vs[1].start(t, 0), straggler.start(t, 0)})
	cfg.Async = true
	cfg.Vote = check.Majority
	cfg.StageTimeout = 100 * time.Millisecond
	e := buildEngine(t, cfg)

	start := time.Now()
	r, err := e.Infer(input(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["y"].At(0); got != 6 {
		t.Fatalf("y = %v, want 6", got)
	}
	// Forwarding happened on quorum, well before the deadline.
	if fwd := time.Since(start); fwd > 90*time.Millisecond {
		t.Logf("warning: quorum forward took %v", fwd)
	}
	// The straggler is then declared dead at the deadline, finalizing (and
	// thus purging) the forwarded gather.
	ev := waitEvent(t, e, EventVariantTimeout)
	if ev.Variants[0] != "straggler" {
		t.Fatalf("timeout names %v", ev.Variants)
	}
	if got := e.Ladder()[0]; got != LadderQuorum {
		t.Fatalf("ladder = %v, want quorum", got)
	}
}

// TestMajorityDenominatorIncludesCrashes pins finishDiverged's recovery
// quorum semantics (the satellite-bug check): the majority denominator is
// the masked-at-dispatch variant count — crashed variants count against the
// quorum exactly as in check.Vote's Majority rule. Two agreeing of four
// (one dissenter, one crash) is NOT a majority; three of four (one crash) is.
func TestMajorityDenominatorIncludesCrashes(t *testing.T) {
	t.Run("2-of-4-no-majority", func(t *testing.T) {
		vs := []*fakeVariant{
			{id: "good1", behave: doubler(0)},
			{id: "good2", behave: doubler(0)},
			{id: "evil", behave: doubler(100)},
			{id: "crasher", behave: func(uint64, map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
				return nil, "boom"
			}},
		}
		cfg := oneStageConfig([]*Handle{vs[0].start(t, 0), vs[1].start(t, 0), vs[2].start(t, 0), vs[3].start(t, 0)})
		cfg.Response = DropVariant
		e := buildEngine(t, cfg)

		_, err := e.Infer(input(2))
		if err == nil {
			t.Fatal("2 agreeing of 4 masked (1 dissent + 1 crash) must not pass as a majority")
		}
		if !strings.Contains(err.Error(), "no agreeing majority") {
			t.Fatalf("err = %v, want no-agreeing-majority", err)
		}
	})
	t.Run("3-of-4-majority", func(t *testing.T) {
		vs := []*fakeVariant{
			{id: "good1", behave: doubler(0)},
			{id: "good2", behave: doubler(0)},
			{id: "good3", behave: doubler(0)},
			{id: "crasher", behave: func(uint64, map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
				return nil, "boom"
			}},
		}
		cfg := oneStageConfig([]*Handle{vs[0].start(t, 0), vs[1].start(t, 0), vs[2].start(t, 0), vs[3].start(t, 0)})
		cfg.Response = DropVariant
		e := buildEngine(t, cfg)

		r, err := e.Infer(input(2))
		if err != nil {
			t.Fatalf("3 agreeing of 4 is a strict majority: %v", err)
		}
		if got := r.Tensors["y"].At(0); got != 4 {
			t.Fatalf("y = %v, want 4", got)
		}
	})
}

// TestLadderWalksEveryRung drives one stage down the entire ladder:
// full → quorum → single → halted, checking the rung and its event at each
// step.
func TestLadderWalksEveryRung(t *testing.T) {
	crashOn := func(magic float32) func(uint64, map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
		return func(id uint64, in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
			if in["x"].At(0) == magic {
				return nil, "killed"
			}
			return doubler(0)(id, in)
		}
	}
	vs := []*fakeVariant{
		{id: "v1", behave: crashOn(101)},
		{id: "v2", behave: crashOn(102)},
		{id: "v3", behave: doubler(0)},
	}
	h3 := vs[2].start(t, 0)
	cfg := oneStageConfig([]*Handle{vs[0].start(t, 0), vs[1].start(t, 0), h3})
	cfg.Response = DropVariant
	e := buildEngine(t, cfg)

	if got := e.Ladder()[0]; got != LadderFull {
		t.Fatalf("initial ladder = %v, want full", got)
	}
	if _, err := e.Infer(input(101)); err != nil { // v1 dies; 2/3 majority holds
		t.Fatal(err)
	}
	if got := e.Ladder()[0]; got != LadderQuorum {
		t.Fatalf("ladder = %v, want quorum", got)
	}
	if _, err := e.Infer(input(102)); err == nil { // v2 dies; 1/2 is no majority
		t.Fatal("1 of 2 masked must not pass as a majority")
	}
	if got := e.Ladder()[0]; got != LadderSingle {
		t.Fatalf("ladder = %v, want single", got)
	}
	// Single-variant fast path serves unverified.
	r, err := e.Infer(input(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tensors["y"].At(0); got != 14 {
		t.Fatalf("y = %v, want 14", got)
	}
	// Kill the last survivor's connection: halted.
	_ = h3.conn.Close()
	deadline := time.Now().Add(3 * time.Second)
	for e.Ladder()[0] != LadderHalted && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := e.Ladder()[0]; got != LadderHalted {
		t.Fatalf("ladder = %v, want halted", got)
	}
	if _, err := e.Infer(input(9)); err == nil {
		t.Fatal("halted stage must fail batches")
	}
	demotions := 0
	for _, ev := range e.Events() {
		if ev.Kind == EventLadderDemoted {
			demotions++
		}
	}
	if demotions != 3 {
		t.Fatalf("demotion events = %d, want 3 (full→quorum→single→halted)", demotions)
	}
}

// TestResponseModesTable exercises every response mode against crash, hang
// and divergence faults, in sync and async checkpoint modes.
func TestResponseModesTable(t *testing.T) {
	type tc struct {
		name     string
		response ResponseMode
		fault    string // crash | hang | dissent
		async    bool
		wantErr  bool      // first faulty batch fails
		wantKind EventKind // recorded for the faulty batch
		degraded bool      // faulty variant removed afterwards
	}
	cases := []tc{
		{name: "halt/crash/sync", response: Halt, fault: "crash", wantErr: true, wantKind: EventDivergence},
		{name: "halt/hang/sync", response: Halt, fault: "hang", wantErr: true, wantKind: EventVariantTimeout},
		{name: "halt/dissent/sync", response: Halt, fault: "dissent", wantErr: true, wantKind: EventDivergence},
		{name: "drop/crash/sync", response: DropVariant, fault: "crash", wantKind: EventVariantDropped, degraded: true},
		{name: "drop/hang/sync", response: DropVariant, fault: "hang", wantKind: EventVariantTimeout, degraded: true},
		{name: "drop/dissent/sync", response: DropVariant, fault: "dissent", wantKind: EventVariantDropped, degraded: true},
		{name: "report/crash/sync", response: ReportOnly, fault: "crash", wantKind: EventDivergence},
		{name: "report/dissent/sync", response: ReportOnly, fault: "dissent", wantKind: EventDivergence},
		{name: "recover/crash/sync", response: Recover, fault: "crash", wantKind: EventVariantReplaced, degraded: false},
		{name: "recover/hang/sync", response: Recover, fault: "hang", wantKind: EventVariantReplaced, degraded: false},
		{name: "recover/dissent/sync", response: Recover, fault: "dissent", wantKind: EventVariantReplaced, degraded: false},
		{name: "drop/dissent/async-late", response: DropVariant, fault: "late-dissent", async: true, wantKind: EventLateDissent, degraded: true},
		{name: "report/dissent/async-late", response: ReportOnly, fault: "late-dissent", async: true, wantKind: EventLateDissent},
		{name: "recover/crash/async", response: Recover, fault: "crash", async: true, wantKind: EventVariantReplaced},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			bad := &fakeVariant{id: "bad"}
			switch c.fault {
			case "crash":
				bad.behave = func(uint64, map[string]*tensor.Tensor) (map[string]*tensor.Tensor, string) {
					return nil, "boom"
				}
			case "hang":
				bad.behave = doubler(0)
				bad.delay = 10 * time.Second
			case "dissent":
				bad.behave = doubler(100)
			case "late-dissent":
				bad.behave = doubler(100)
				bad.delay = 120 * time.Millisecond
			}
			good := []*fakeVariant{
				{id: "g1", behave: doubler(0)},
				{id: "g2", behave: doubler(0)},
			}
			cfg := oneStageConfig([]*Handle{good[0].start(t, 0), good[1].start(t, 0), bad.start(t, 0)})
			cfg.Response = c.response
			cfg.Async = c.async
			if c.fault == "hang" {
				cfg.StageTimeout = 80 * time.Millisecond
			}
			if c.fault == "late-dissent" {
				cfg.StageTimeout = time.Second // generous; straggler reports before it
			}
			var taken atomic.Int64
			if c.response == Recover {
				cfg.Replace = spareFactory(t, &taken)
			}
			e := buildEngine(t, cfg)

			r, err := e.Infer(input(2))
			if c.fault == "late-dissent" {
				// The quorum forwarded before the dissent: batch 1 always
				// succeeds; the reaction happens retroactively.
				if err != nil {
					t.Fatalf("forwarded batch failed: %v", err)
				}
			} else if c.wantErr {
				if err == nil {
					t.Fatalf("want batch failure, got %v", r.Tensors)
				}
			} else {
				if err != nil {
					t.Fatal(err)
				}
				if got := r.Tensors["y"].At(0); got != 4 {
					t.Fatalf("y = %v, want 4", got)
				}
			}
			waitEvent(t, e, c.wantKind)

			if c.response == Halt {
				// Fatal latches: later submissions fail.
				deadline := time.Now().Add(3 * time.Second)
				for time.Now().Before(deadline) {
					if _, err := e.Infer(input(3)); err != nil {
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
				t.Fatal("engine accepted batches after a Halt response")
			}
			// Non-halt modes keep serving.
			r2, err := e.Infer(input(3))
			if err != nil {
				t.Fatalf("second batch: %v", err)
			}
			if got := r2.Tensors["y"].At(0); got != 6 {
				t.Fatalf("second batch y = %v, want 6", got)
			}
			if c.degraded {
				if got := e.Ladder()[0]; got != LadderQuorum {
					t.Fatalf("ladder = %v, want quorum after removal", got)
				}
			}
			if c.response == Recover {
				waitEvent(t, e, EventLadderPromoted)
				if got := e.Ladder()[0]; got != LadderFull {
					t.Fatalf("ladder = %v, want full after recovery", got)
				}
			}
		})
	}
}
