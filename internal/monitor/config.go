// Package monitor implements the MVTEE monitor TEE (§4.3, §5.2): the
// security manager that attests, keys and binds variant TEEs (Figure 6), and
// the MVX execution engine that distributes inputs, synchronizes checkpoints,
// evaluates consistency, votes, and replicates intermediate results to the
// next pipeline stage — with the slow/fast-path hybrid (Figure 7), selective
// MVX, and synchronous or asynchronous cross-validation (Figure 8).
package monitor

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/check"
)

// PartitionPlan selects the variants for one partition. One claim means the
// partition runs a single variant on the fast path; multiple claims activate
// MVX (slow path) for the partition.
type PartitionPlan struct {
	// Variants lists the pool spec names to instantiate for this
	// partition. Length is the horizontal-scaling factor (§4.3).
	Variants []string `json:"variants"`
}

// MVX reports whether the plan activates multi-variant execution.
func (p PartitionPlan) MVX() bool { return len(p.Variants) > 1 }

// ResponseMode selects the monitor's reaction to a detected divergence.
type ResponseMode int

// Divergence responses (§2.4: accept an output by vote, halt, or recover).
const (
	// Halt stops the pipeline on the first divergence (fail-secure).
	Halt ResponseMode = iota + 1
	// DropVariant excludes dissenting variants and continues with the
	// agreeing majority's output.
	DropVariant
	// ReportOnly records the event and continues with the majority output
	// when one exists.
	ReportOnly
	// Recover excludes dissenting variants like DropVariant and additionally
	// hot-replaces dead slots from the monitor's spare pool (Figure 6):
	// attest → bind → resume at the next checkpoint, appending the new
	// binding to the binding log (§4.3).
	Recover
)

func (r ResponseMode) String() string {
	switch r {
	case Halt:
		return "halt"
	case DropVariant:
		return "drop-variant"
	case ReportOnly:
		return "report-only"
	case Recover:
		return "recover"
	default:
		return fmt.Sprintf("ResponseMode(%d)", int(r))
	}
}

// ParseResponse maps a response-mode name (as accepted on the command line
// and in provisioning JSON tooling) to its ResponseMode.
func ParseResponse(s string) (ResponseMode, error) {
	switch s {
	case "halt":
		return Halt, nil
	case "drop-variant", "drop":
		return DropVariant, nil
	case "report-only", "report":
		return ReportOnly, nil
	case "recover":
		return Recover, nil
	default:
		return 0, fmt.Errorf("%w: unknown response mode %q", ErrConfig, s)
	}
}

// MVXConfig is the runtime-provisioned configuration of §4.3: the partition
// set in use and the variant claims per partition, plus checking and
// execution policy. It is the JSON document a model owner provisions to the
// monitor (Figure 6 step 3).
type MVXConfig struct {
	// Model names the protected model (informational).
	Model string `json:"model"`
	// PartitionSet identifies which offline-generated partition set to
	// use (index into the bundle's sets).
	PartitionSet int `json:"partition_set"`
	// Plans holds one PartitionPlan per partition, in pipeline order.
	Plans []PartitionPlan `json:"plans"`
	// Async enables asynchronous cross-validation (Figure 8).
	Async bool `json:"async,omitempty"`
	// Vote is the voting strategy; zero means unanimous (§4.3 default).
	Vote check.Strategy `json:"vote,omitempty"`
	// Response is the divergence reaction; zero means Halt.
	Response ResponseMode `json:"response,omitempty"`
	// Criteria overrides the consistency policy; empty uses the default.
	Criteria []check.Criterion `json:"criteria,omitempty"`
	// StageTimeoutMS is the straggler deadline per checkpoint in
	// milliseconds; zero disables deadlines and a hung variant stalls its
	// stage (pre-robustness behavior).
	StageTimeoutMS int `json:"stage_timeout_ms,omitempty"`
	// InflightWindow is the per-stage credit budget for the pipelined engine:
	// at most this many checkpoint gathers may be outstanding per stage
	// before further batches queue. Zero disables the window.
	InflightWindow int `json:"inflight_window,omitempty"`
	// Spares lists per-partition spare variant claims (same shape as Plans):
	// spare TEEs are pre-established at deploy time (Figure 6) but bound
	// lazily, when a Recover response promotes one into a dead slot. Empty,
	// or empty per partition, means no spares there.
	Spares []PartitionPlan `json:"spares,omitempty"`
}

// ErrConfig reports an invalid MVX configuration.
var ErrConfig = errors.New("monitor: invalid MVX config")

// Validate checks the configuration.
func (c *MVXConfig) Validate() error {
	if len(c.Plans) == 0 {
		return fmt.Errorf("%w: no partition plans", ErrConfig)
	}
	for i, p := range c.Plans {
		if len(p.Variants) == 0 {
			return fmt.Errorf("%w: partition %d has no variants", ErrConfig, i)
		}
	}
	if c.StageTimeoutMS < 0 {
		return fmt.Errorf("%w: negative stage timeout %d", ErrConfig, c.StageTimeoutMS)
	}
	if c.InflightWindow < 0 {
		return fmt.Errorf("%w: negative inflight window %d", ErrConfig, c.InflightWindow)
	}
	if len(c.Spares) != 0 && len(c.Spares) != len(c.Plans) {
		return fmt.Errorf("%w: %d spare plans vs %d plans", ErrConfig, len(c.Spares), len(c.Plans))
	}
	if c.Response != 0 && c.Response != Halt && c.Response != DropVariant &&
		c.Response != ReportOnly && c.Response != Recover {
		return fmt.Errorf("%w: unknown response mode %d", ErrConfig, int(c.Response))
	}
	if c.Async && c.Vote == check.Unanimous {
		// Async mode forwards on majority quorum; unanimity is only known
		// after stragglers arrive, which is exactly the cross-validation
		// this mode performs. Allowed, but the quorum is majority-based.
		_ = c
	}
	return nil
}

func (c *MVXConfig) withDefaults() MVXConfig {
	out := *c
	if out.Vote == 0 {
		out.Vote = check.Unanimous
	}
	if out.Response == 0 {
		out.Response = Halt
	}
	return out
}

// Policy resolves the consistency policy.
func (c *MVXConfig) Policy() check.Policy {
	if len(c.Criteria) == 0 {
		return check.DefaultPolicy()
	}
	return check.Policy{Criteria: c.Criteria}
}

// Marshal renders the config as JSON for provisioning.
func (c *MVXConfig) Marshal() ([]byte, error) { return json.Marshal(c) }

// ParseConfig parses and validates a provisioned MVX configuration.
func ParseConfig(b []byte) (*MVXConfig, error) {
	var c MVXConfig
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
