package monitor

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEventsDeepCopy verifies Events() hands the caller an isolated copy:
// mutating a returned event's Variants slice must not corrupt the engine's
// retained log.
func TestEventsDeepCopy(t *testing.T) {
	v0 := &fakeVariant{id: "s0", behave: doubler(0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	e := buildEngine(t, twoStageConfig([]*Handle{v0.start(t, 0)}, []*Handle{v1.start(t, 1)}))

	e.recordEvent(Event{Kind: EventVariantDown, Stage: 0, Variants: []string{"original"}, Time: time.Now()})
	evs := e.Events()
	if len(evs) != 1 || evs[0].Variants[0] != "original" {
		t.Fatalf("unexpected log %+v", evs)
	}
	evs[0].Variants[0] = "mutated"
	if got := e.Events()[0].Variants[0]; got != "original" {
		t.Fatalf("caller mutation leaked into the engine log: %q", got)
	}
}

// TestEventsConcurrentAccess hammers recordEvent against Events() readers
// that write through the returned slices; under -race this proves the
// snapshot is fully decoupled from the producer.
func TestEventsConcurrentAccess(t *testing.T) {
	v0 := &fakeVariant{id: "s0", behave: doubler(0)}
	v1 := &fakeVariant{id: "s1", behave: incrementer()}
	e := buildEngine(t, twoStageConfig([]*Handle{v0.start(t, 0)}, []*Handle{v1.start(t, 1)}))

	const iters = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			e.recordEvent(Event{Kind: EventVariantTimeout, Stage: i % 2,
				Variants: []string{"a", "b"}, Time: time.Now()})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			for _, ev := range e.Events() {
				for j := range ev.Variants {
					ev.Variants[j] = "scribbled" // must be a private copy
				}
			}
		}
	}()
	wg.Wait()
	for _, ev := range e.Events() {
		for _, v := range ev.Variants {
			if v == "scribbled" {
				t.Fatal("reader writes reached the engine's retained events")
			}
		}
	}
}

// TestEventKindExhaustive walks every defined kind and fails when one lacks a
// String() case or a Severity() classification — the compile-time-adjacent
// guard that forces new kinds to be classified for the /events stream.
func TestEventKindExhaustive(t *testing.T) {
	for k := EventKind(1); k < eventKindEnd; k++ {
		if strings.HasPrefix(k.String(), "EventKind(") {
			t.Errorf("kind %d has no String() case", int(k))
		}
		if !k.Severity().Valid() {
			t.Errorf("kind %v has no Severity() classification", k)
		}
	}
	// And the inverse: values outside the defined range stay unclassified.
	if EventKind(0).Severity().Valid() || eventKindEnd.Severity().Valid() {
		t.Error("out-of-range kinds must not carry a severity")
	}
}

// TestEventJSON checks the operator-stream rendering: kind spelled out,
// severity attached, empty fields omitted.
func TestEventJSON(t *testing.T) {
	ev := Event{
		Kind:     EventDivergence,
		Stage:    2,
		BatchID:  7,
		Variants: []string{"p2-tvm-0"},
		Detail:   "vote failed",
		Time:     time.Unix(1700000000, 0).UTC(),
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "divergence" || m["severity"] != "security" {
		t.Fatalf("kind/severity = %v/%v", m["kind"], m["severity"])
	}
	if m["stage"] != float64(2) || m["batch_id"] != float64(7) {
		t.Fatalf("stage/batch = %v/%v", m["stage"], m["batch_id"])
	}
	if _, ok := m["variants"]; !ok {
		t.Fatal("variants missing")
	}

	empty, err := json.Marshal(Event{Kind: EventLadderPromoted, Time: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(empty), "variants") || strings.Contains(string(empty), "detail") {
		t.Fatalf("empty fields not omitted: %s", empty)
	}
}
