package monitor

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// scriptConn is a monitor-side variant connection the test fully controls:
// dispatched batch payloads are recorded (never blocking the stage worker),
// and results flow back only when the test releases them.
type scriptConn struct {
	id string

	mu       sync.Mutex
	payloads [][]byte // raw dispatched wire payloads, in order
	ids      []uint64

	resCh  chan []byte
	closed chan struct{}
	once   sync.Once
}

func newScriptConn(id string) *scriptConn {
	return &scriptConn{id: id, resCh: make(chan []byte, 64), closed: make(chan struct{})}
}

func (c *scriptConn) Send(b []byte) error {
	msg, err := wire.Unmarshal(b)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if batch, ok := msg.(*wire.Batch); ok {
		c.payloads = append(c.payloads, append([]byte(nil), b...))
		c.ids = append(c.ids, batch.ID)
	}
	return nil
}

func (c *scriptConn) Recv() ([]byte, error) {
	select {
	case b := <-c.resCh:
		return b, nil
	case <-c.closed:
		return nil, net.ErrClosed
	}
}

func (c *scriptConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// release sends one successful result for batch id back to the monitor.
func (c *scriptConn) release(t *testing.T, id uint64) {
	t.Helper()
	res := &wire.Result{ID: id, VariantID: c.id, Tensors: map[string]*tensor.Tensor{
		"y": tensor.MustFromSlice([]float32{float32(id)}, 1),
	}}
	b, err := wire.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	c.resCh <- b
}

func (c *scriptConn) dispatched() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]uint64(nil), c.ids...)
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestInflightWindowThrottlesDispatch pins the credit semantics: with
// InflightWindow=W, a stage holds at most W outstanding gathers — further
// batches queue and are dispatched only as earlier gathers resolve.
func TestInflightWindowThrottlesDispatch(t *testing.T) {
	sc := newScriptConn("v0")
	h := NewHandle("v0", 0, "spec", sc)
	cfg := EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"y"},
		Stages: []StageSpec{
			{Inputs: []string{"x"}, Outputs: []string{"y"}, Handles: []*Handle{h}},
		},
		MaxInFlight:    8,
		InflightWindow: 2,
	}
	e := buildEngine(t, cfg)

	for i := 0; i < 5; i++ {
		if _, err := e.Submit(input(float32(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Only the first W=2 batches may reach the variant.
	waitFor(t, func() bool { return len(sc.dispatched()) == 2 }, "initial window dispatch")
	time.Sleep(20 * time.Millisecond)
	if got := sc.dispatched(); len(got) != 2 {
		t.Fatalf("window=2 but %d batches dispatched: %v", len(got), got)
	}

	// Resolving one gather refunds one credit: exactly one more dispatch.
	sc.release(t, sc.dispatched()[0])
	waitFor(t, func() bool { return len(sc.dispatched()) == 3 }, "credit refund dispatch")
	time.Sleep(20 * time.Millisecond)
	if got := sc.dispatched(); len(got) != 3 {
		t.Fatalf("one credit released but %d dispatched: %v", len(got), got)
	}

	// Drain the rest in dispatch order; all five batches must complete.
	released := map[uint64]bool{sc.dispatched()[0]: true}
	for completed := 1; completed < 5; completed++ {
		var next uint64
		waitFor(t, func() bool {
			for _, id := range sc.dispatched() {
				if !released[id] {
					next = id
					return true
				}
			}
			return false
		}, "next dispatch")
		released[next] = true
		sc.release(t, next)
	}
	for i := 0; i < 5; i++ {
		r := <-e.Outputs()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if got := sc.dispatched(); len(got) != 5 {
		t.Fatalf("dispatched %d batches, want 5", len(got))
	}
}

// TestSetInflightWindowRetunesLive pins the dynamic-window contract: a
// running stage picks up Engine.SetInflightWindow at its next drain, without
// a restart and without revoking credits mid-gather.
func TestSetInflightWindowRetunesLive(t *testing.T) {
	sc := newScriptConn("v0")
	h := NewHandle("v0", 0, "spec", sc)
	e := buildEngine(t, EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"y"},
		Stages: []StageSpec{
			{Inputs: []string{"x"}, Outputs: []string{"y"}, Handles: []*Handle{h}},
		},
		MaxInFlight:    8,
		InflightWindow: 1,
	})
	if got := e.InflightWindow(); got != 1 {
		t.Fatalf("InflightWindow() = %d, want 1", got)
	}

	for i := 0; i < 4; i++ {
		if _, err := e.Submit(input(float32(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(sc.dispatched()) == 1 }, "window=1 dispatch")
	time.Sleep(20 * time.Millisecond)
	if got := sc.dispatched(); len(got) != 1 {
		t.Fatalf("window=1 but %d dispatched", len(got))
	}

	// Widen to 3: the refund from resolving the outstanding gather drains
	// pending up to the new budget.
	e.SetInflightWindow(3)
	sc.release(t, sc.dispatched()[0])
	waitFor(t, func() bool { return len(sc.dispatched()) == 4 }, "widened-window dispatch")

	for _, id := range sc.dispatched()[1:] {
		sc.release(t, id)
	}
	for i := 0; i < 4; i++ {
		if r := <-e.Outputs(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// Negative clamps to 0 (window disabled).
	e.SetInflightWindow(-5)
	if got := e.InflightWindow(); got != 0 {
		t.Fatalf("negative retune gave %d, want 0", got)
	}
}

// TestDispatchEncodesOnceAcrossVariants checks the fan-out contract on a
// 3-variant MVX stage: every variant receives the byte-identical encoding of
// the batch (the dispatcher marshals once and fans the same payload out),
// and it matches the deterministic pooled codec.
func TestDispatchEncodesOnceAcrossVariants(t *testing.T) {
	// With telemetry off the engine mints a zero trace ID, so the reference
	// marshal below (also zero-trace) must match the dispatched bytes exactly.
	telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(true)
	conns := []*scriptConn{newScriptConn("v0"), newScriptConn("v1"), newScriptConn("v2")}
	handles := make([]*Handle, len(conns))
	for i, c := range conns {
		handles[i] = NewHandle(c.id, 0, "spec", c)
	}
	cfg := EngineConfig{
		GraphInputs:  []string{"x", "w", "b", "m", "s"},
		GraphOutputs: []string{"y"},
		Stages: []StageSpec{
			{Inputs: []string{"x", "w", "b", "m", "s"}, Outputs: []string{"y"}, Handles: handles},
		},
	}
	e := buildEngine(t, cfg)

	// Several tensors, so any per-variant re-marshal would almost surely
	// reorder the (map-iterated) tensor section and break byte equality.
	inputs := map[string]*tensor.Tensor{
		"x": tensor.MustFromSlice([]float32{1, 2}, 2),
		"w": tensor.MustFromSlice([]float32{3}, 1),
		"b": tensor.MustFromSlice([]float32{4}, 1),
		"m": tensor.MustFromSlice([]float32{5}, 1),
		"s": tensor.MustFromSlice([]float32{6}, 1),
	}
	id, err := e.Submit(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		cc := c
		waitFor(t, func() bool { return len(cc.dispatched()) == 1 }, "dispatch to "+c.id)
	}
	ref := wire.MarshalBatch(&wire.Batch{ID: id, Tensors: inputs})
	defer ref.Free()
	for _, c := range conns {
		c.mu.Lock()
		payload := c.payloads[0]
		c.mu.Unlock()
		if !bytes.Equal(payload, conns[0].payloads[0]) {
			t.Fatalf("variant %s received different bytes than v0", c.id)
		}
		if !bytes.Equal(payload, ref.Payload()) {
			t.Fatalf("variant %s payload differs from the pooled codec", c.id)
		}
	}
	for _, c := range conns {
		c.release(t, id)
	}
	r := <-e.Outputs()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
}
