package transcript

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

// refMTH is the straight-from-the-RFC recursive Merkle tree head, used as
// the oracle for the incremental stack and the proof algorithms.
func refMTH(leaves [][]byte) Hash {
	if len(leaves) == 0 {
		return EmptyRoot()
	}
	if len(leaves) == 1 {
		return LeafHash(leaves[0])
	}
	k := 1
	for k<<1 < len(leaves) {
		k <<= 1
	}
	return nodeHash(refMTH(leaves[:k]), refMTH(leaves[k:]))
}

func testLeaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(i)*0x9e3779b97f4a7c15+1)
		out[i] = b
	}
	return out
}

func buildLog(t *testing.T, leaves [][]byte) *Log {
	t.Helper()
	l := NewLog()
	for i, lf := range leaves {
		if got := l.Append(LeafHash(lf)); got != uint64(i) {
			t.Fatalf("append %d returned index %d", i, got)
		}
	}
	return l
}

func TestIncrementalRootMatchesReference(t *testing.T) {
	leaves := testLeaves(130)
	l := NewLog()
	for n := 0; n <= len(leaves); n++ {
		if n > 0 {
			l.Append(LeafHash(leaves[n-1]))
		}
		want := refMTH(leaves[:n])
		if got := l.Root(); got != want {
			t.Fatalf("size %d: incremental root %x != reference %x", n, got[:8], want[:8])
		}
		at, err := l.RootAt(uint64(n))
		if err != nil {
			t.Fatalf("RootAt(%d): %v", n, err)
		}
		if at != want {
			t.Fatalf("size %d: RootAt %x != reference %x", n, at[:8], want[:8])
		}
	}
}

func TestEmptyRootIsSHA256OfNothing(t *testing.T) {
	want := Hash(sha256.Sum256(nil))
	if got := NewLog().Root(); got != want {
		t.Fatalf("empty root %x, want sha256(\"\") %x", got[:8], want[:8])
	}
}

// TestInclusionProofExhaustive checks every (index, size) pair up to 64
// leaves verifies against the reference root, and that single-bit damage to
// the leaf, the proof, or the index is rejected.
func TestInclusionProofExhaustive(t *testing.T) {
	leaves := testLeaves(64)
	l := buildLog(t, leaves)
	for size := uint64(1); size <= 64; size++ {
		root := refMTH(leaves[:size])
		for idx := uint64(0); idx < size; idx++ {
			p, err := l.InclusionProof(idx, size)
			if err != nil {
				t.Fatalf("InclusionProof(%d, %d): %v", idx, size, err)
			}
			if err := VerifyInclusion(LeafHash(leaves[idx]), p, root); err != nil {
				t.Fatalf("verify inclusion %d of %d: %v", idx, size, err)
			}
			// Wrong leaf must fail.
			if err := VerifyInclusion(LeafHash([]byte("evil")), p, root); err == nil {
				t.Fatalf("tampered leaf accepted at %d of %d", idx, size)
			}
			// Damaged proof must fail (flip one bit of the first path node).
			if len(p.Path) > 0 {
				bad := *p
				bad.Path = append([]Hash(nil), p.Path...)
				bad.Path[0][0] ^= 1
				if err := VerifyInclusion(LeafHash(leaves[idx]), &bad, root); err == nil {
					t.Fatalf("tampered proof accepted at %d of %d", idx, size)
				}
			}
		}
	}
}

// TestConsistencyProofExhaustive checks every (m, n) pair up to 64 leaves,
// and that a rewritten prefix is rejected.
func TestConsistencyProofExhaustive(t *testing.T) {
	leaves := testLeaves(64)
	l := buildLog(t, leaves)
	for n := uint64(0); n <= 64; n++ {
		rootN := refMTH(leaves[:n])
		for m := uint64(0); m <= n; m++ {
			rootM := refMTH(leaves[:m])
			p, err := l.ConsistencyProof(m, n)
			if err != nil {
				t.Fatalf("ConsistencyProof(%d, %d): %v", m, n, err)
			}
			if err := VerifyConsistency(p, rootM, rootN); err != nil {
				t.Fatalf("verify consistency %d -> %d: %v", m, n, err)
			}
			// A different old root (rewritten history) must fail unless both
			// trees are empty.
			if m > 0 {
				var evil Hash
				evil[0] = 0xee
				if err := VerifyConsistency(p, evil, rootN); err == nil {
					t.Fatalf("rewritten old root accepted at %d -> %d", m, n)
				}
			}
		}
	}
}

// TestConsistencyDetectsRewrite builds a second log that shares no prefix
// and confirms the first log's old head cannot be extended into it.
func TestConsistencyDetectsRewrite(t *testing.T) {
	honest := testLeaves(40)
	l := buildLog(t, honest)
	oldRoot, err := l.RootAt(16)
	if err != nil {
		t.Fatal(err)
	}

	rewritten := testLeaves(40)
	rewritten[3] = []byte("tampered batch")
	l2 := buildLog(t, rewritten)
	p, err := l2.ConsistencyProof(16, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConsistency(p, oldRoot, l2.Root()); err == nil {
		t.Fatal("consistency proof over a rewritten log verified against the honest old head")
	}
}

func TestProofCodecRoundTrip(t *testing.T) {
	leaves := testLeaves(33)
	l := buildLog(t, leaves)
	cases := []*Proof{}
	for _, idx := range []uint64{0, 7, 31, 32} {
		p, err := l.InclusionProof(idx, 33)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, p)
	}
	for _, m := range []uint64{0, 1, 16, 33} {
		p, err := l.ConsistencyProof(m, 33)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, p)
	}
	for i, p := range cases {
		b, err := p.Marshal()
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		got, err := UnmarshalProof(b)
		if err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if got.Kind != p.Kind || got.First != p.First || got.Second != p.Second || len(got.Path) != len(p.Path) {
			t.Fatalf("case %d: round-trip mismatch: %+v != %+v", i, got, p)
		}
		for j := range p.Path {
			if got.Path[j] != p.Path[j] {
				t.Fatalf("case %d: path[%d] mismatch", i, j)
			}
		}
		// Truncation and trailing garbage must both be rejected.
		if _, err := UnmarshalProof(b[:len(b)-1]); err == nil {
			t.Fatalf("case %d: truncated proof accepted", i)
		}
		if _, err := UnmarshalProof(append(append([]byte(nil), b...), 0)); err == nil {
			t.Fatalf("case %d: trailing byte accepted", i)
		}
	}
}

func TestProofDecodeRejectsHostileHeaders(t *testing.T) {
	good, err := (&Proof{Kind: ProofInclusion, First: 0, Second: 1}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		[]byte("MVTP"),
		append([]byte("XXTP"), good[4:]...),     // wrong magic
		append([]byte("MVTP\x02"), good[5:]...), // wrong version
		append([]byte("MVTP\x01\x07"), good[6:]...),                                                 // unknown kind
		func() []byte { b := append([]byte(nil), good...); b[22] = 0xff; b[23] = 0xff; return b }(), // count over cap
	}
	for i, b := range bad {
		if _, err := UnmarshalProof(b); err == nil {
			t.Fatalf("hostile header %d accepted", i)
		}
	}
}
