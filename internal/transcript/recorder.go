package transcript

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/check"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config sizes a Recorder.
type Config struct {
	// Signer produces the attestation reports on tree heads (the monitor
	// enclave in-process, the router's identity enclave in cluster mode).
	// Nil leaves heads unsigned — VerifyHead rejects them, so production
	// deployments must set it.
	Signer attest.Attester
	// Model is the sealed model measurement digest chained into every head.
	Model Hash
	// Bindings returns the live §4.3 binding-log digest at head-signing
	// time (the log is append-only but grows on spare promotion). Nil means
	// all-zero.
	Bindings func() Hash
	// HeadEvery signs a fresh tree head every N appended leaves. Zero means
	// 32.
	HeadEvery int
	// Buffer is the event channel capacity between the hot path and the
	// transcript worker. Zero means 1024.
	Buffer int
	// SampleEvery retains every Nth leaf's input tensors for offline
	// replay. Zero means 16; negative disables sampling.
	SampleEvery int
	// SampleRing bounds retained replay samples. Zero means 8.
	SampleRing int
	// MaxPending bounds batches awaiting delivery in the worker. Zero means
	// 4096.
	MaxPending int
	// Metrics receives the transcript series; nil uses telemetry.Default.
	Metrics *telemetry.Registry
}

// Sample is one retained replay candidate: a leaf plus the input tensors
// that produced it, served to auditors who replay the batch locally.
type Sample struct {
	Index  uint64
	Leaf   Leaf
	Inputs map[string]*tensor.Tensor
}

// recEvent is one hot-path notification. Exactly one of the kinds is set.
type recEvent struct {
	kind    uint8 // 'b'egin, 'c'heckpoint, 'C'heckpoint-tensors, 'v'ote, 'd'eliver, 'a'bort
	batch   uint64
	trace   uint64
	stage   int
	digest  check.Digest
	replica string
	agree   bool
	rung    uint8
	tensors map[string]*tensor.Tensor
}

// pendingLeaf accumulates one batch's events until delivery.
type pendingLeaf struct {
	trace       uint64
	inputs      map[string]*tensor.Tensor
	checkpoints []check.Digest
	votes       []Vote
}

// Recorder is the serving-tier end of the transcript: hot-path call sites
// (engine submit/forward/deliver, router submit/vote/deliver) publish tiny
// events into a bounded channel and never block — the same discipline as
// the PR 4 event bus — while a single worker goroutine hashes tensors,
// builds leaves, appends to the Merkle log and periodically signs tree
// heads. A full channel drops the event and counts it; a dropped event
// degrades that batch's leaf (zero digests) but never stalls serving.
// All write-path methods are nil-receiver-safe.
type Recorder struct {
	cfg Config

	ch      chan recEvent
	done    chan struct{}
	closed  atomic.Bool
	dropped atomic.Uint64

	mu      sync.Mutex
	log     *Log
	encoded [][]byte          // encoded leaves, aligned with log indices
	decoded []Leaf            // decoded view, same alignment
	byTrace map[uint64]uint64 // trace -> latest leaf index
	head    SignedHead
	hasHead bool
	samples []Sample
	nextSmp uint64 // leaf index at which the next sample is taken

	mLeaves  *telemetry.Counter
	mDropped *telemetry.Counter
	mHeads   *telemetry.Counter
}

// NewRecorder starts a recorder's worker goroutine. Close releases it.
func NewRecorder(cfg Config) *Recorder {
	if cfg.HeadEvery <= 0 {
		cfg.HeadEvery = 32
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 16
	}
	if cfg.SampleRing <= 0 {
		cfg.SampleRing = 8
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.Default
	}
	r := &Recorder{
		cfg:      cfg,
		ch:       make(chan recEvent, cfg.Buffer),
		done:     make(chan struct{}),
		log:      NewLog(),
		byTrace:  make(map[uint64]uint64),
		mLeaves:  reg.Counter(telemetry.MetricTranscriptLeaves),
		mDropped: reg.Counter(telemetry.MetricTranscriptDropped),
		mHeads:   reg.Counter(telemetry.MetricTranscriptHeads),
	}
	go r.worker()
	return r
}

// Close stops the worker after draining queued events.
func (r *Recorder) Close() {
	if r == nil || !r.closed.CompareAndSwap(false, true) {
		return
	}
	close(r.ch)
	<-r.done
}

// post enqueues one event without ever blocking the caller.
func (r *Recorder) post(ev recEvent) {
	if r == nil || r.closed.Load() {
		return
	}
	select {
	case r.ch <- ev:
	default:
		r.dropped.Add(1)
		r.mDropped.Inc()
	}
}

// Begin records a batch's submission: its trace ID and input tensors. The
// worker hashes the inputs off the hot path; the map must not be mutated
// after submission (engine and router both retain immutable input sets).
func (r *Recorder) Begin(trace, batch uint64, inputs map[string]*tensor.Tensor) {
	r.post(recEvent{kind: 'b', batch: batch, trace: trace, tensors: inputs})
}

// Checkpoint records one per-stage digest (stage-worker context: the call
// must not block, and it does not — it is one channel send).
func (r *Recorder) Checkpoint(batch uint64, stage int, d check.Digest) {
	r.post(recEvent{kind: 'c', batch: batch, stage: stage, digest: d})
}

// CheckpointTensors records a per-stage checkpoint by reference to its
// output tensors; the worker hashes them off the hot path. Single-node
// engines use this form — without a cluster digest sink there is no reason
// to pay the digest on the stage worker. The map must not be mutated after
// the call (checkpoint outputs are immutable once forwarded).
func (r *Recorder) CheckpointTensors(batch uint64, stage int, outs map[string]*tensor.Tensor) {
	r.post(recEvent{kind: 'C', batch: batch, stage: stage, tensors: outs})
}

// Vote records one follower's digest verdict (cluster mode).
func (r *Recorder) Vote(batch uint64, replica string, sum check.Digest, agree bool) {
	r.post(recEvent{kind: 'v', batch: batch, replica: replica, digest: sum, agree: agree})
}

// Deliver finalizes a batch's leaf with its output tensors, worst ladder
// rung and serving replica. The worker hashes the outputs and appends.
func (r *Recorder) Deliver(batch uint64, outputs map[string]*tensor.Tensor, rung uint8, replica string) {
	r.post(recEvent{kind: 'd', batch: batch, tensors: outputs, rung: rung, replica: replica})
}

// Abort discards a batch's accumulated state (failed batches leave no
// leaf — the absence is itself auditable via batch-ID gaps).
func (r *Recorder) Abort(batch uint64) {
	r.post(recEvent{kind: 'a', batch: batch})
}

// Dropped returns cumulative hot-path events lost to a full channel.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

func (r *Recorder) worker() {
	defer close(r.done)
	pending := make(map[uint64]*pendingLeaf)
	order := make([]uint64, 0, 64) // insertion order for bounded eviction
	for ev := range r.ch {
		switch ev.kind {
		case 'b':
			if len(pending) >= r.cfg.MaxPending {
				// Evict the oldest half-built batch rather than grow without
				// bound when deliveries stop arriving.
				for len(order) > 0 {
					old := order[0]
					order = order[1:]
					if _, ok := pending[old]; ok {
						delete(pending, old)
						r.dropped.Add(1)
						r.mDropped.Inc()
						break
					}
				}
			}
			p := &pendingLeaf{trace: ev.trace, inputs: ev.tensors}
			pending[ev.batch] = p
			order = append(order, ev.batch)
		case 'c', 'C':
			p := pending[ev.batch]
			if p == nil {
				break // begin was dropped; leaf will be degraded anyway
			}
			d := ev.digest
			if ev.kind == 'C' {
				d = check.DigestOf(ev.tensors)
			}
			for len(p.checkpoints) <= ev.stage {
				p.checkpoints = append(p.checkpoints, check.Digest{})
			}
			p.checkpoints[ev.stage] = d
		case 'v':
			p := pending[ev.batch]
			if p == nil {
				break
			}
			p.votes = append(p.votes, Vote{Replica: ev.replica, Sum: ev.digest, Agree: ev.agree})
		case 'a':
			delete(pending, ev.batch)
		case 'd':
			p := pending[ev.batch]
			if p == nil {
				p = &pendingLeaf{}
			}
			delete(pending, ev.batch)
			leaf := Leaf{
				Trace:       p.trace,
				Batch:       ev.batch,
				Checkpoints: p.checkpoints,
				Votes:       p.votes,
				Rung:        ev.rung,
				Replica:     ev.replica,
			}
			if p.inputs != nil {
				leaf.Input = check.DigestOf(p.inputs)
			}
			if ev.tensors != nil {
				leaf.Output = check.DigestOf(ev.tensors)
			}
			r.append(leaf, p.inputs)
		}
	}
}

// append encodes the leaf, extends the tree, samples and signs heads.
func (r *Recorder) append(leaf Leaf, inputs map[string]*tensor.Tensor) {
	enc, err := leaf.Marshal()
	if err != nil {
		// Oversized leaf (pathological replica IDs); count as a drop.
		r.dropped.Add(1)
		r.mDropped.Inc()
		return
	}
	r.mu.Lock()
	idx := r.log.Append(LeafHash(enc))
	r.encoded = append(r.encoded, enc)
	r.decoded = append(r.decoded, leaf)
	if leaf.Trace != 0 {
		r.byTrace[leaf.Trace] = idx
	}
	if r.cfg.SampleEvery > 0 && idx == r.nextSmp && inputs != nil {
		r.samples = append(r.samples, Sample{Index: idx, Leaf: leaf, Inputs: inputs})
		if len(r.samples) > r.cfg.SampleRing {
			r.samples = r.samples[1:]
		}
		r.nextSmp = idx + uint64(r.cfg.SampleEvery)
	} else if r.cfg.SampleEvery > 0 && idx >= r.nextSmp {
		// The scheduled leaf had no retained inputs; slide the schedule.
		r.nextSmp = idx + 1
	}
	size := r.log.Size()
	if size%uint64(r.cfg.HeadEvery) == 0 {
		r.signLocked()
	}
	r.mu.Unlock()
	r.mLeaves.Inc()
}

// signLocked publishes a head over the current tree. Caller holds r.mu.
func (r *Recorder) signLocked() {
	h := TreeHead{
		Size:   r.log.Size(),
		Root:   r.log.Root(),
		Model:  r.cfg.Model,
		TimeNs: time.Now().UnixNano(),
	}
	if r.cfg.Bindings != nil {
		h.Bindings = r.cfg.Bindings()
	}
	if r.cfg.Signer == nil {
		r.head, r.hasHead = SignedHead{Head: h}, true
		return
	}
	sh, err := SignHead(r.cfg.Signer, h)
	if err != nil {
		// Keep the previous head; the next append retries.
		return
	}
	r.head, r.hasHead = sh, true
	r.mHeads.Inc()
}

// ErrEmpty reports an audit request against a log with nothing published.
var ErrEmpty = errors.New("transcript: empty log")

// SignedHead returns the latest published head. With fresh true (or when no
// head has been signed yet) it first signs one over the current tree, so
// auditors can always obtain a head covering everything delivered so far.
func (r *Recorder) SignedHead(fresh bool) (SignedHead, error) {
	if r == nil {
		return SignedHead{}, ErrEmpty
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fresh || !r.hasHead || r.head.Head.Size < r.log.Size() {
		r.signLocked()
	}
	if !r.hasHead {
		return SignedHead{}, ErrEmpty
	}
	return r.head, nil
}

// Size returns the number of appended leaves.
func (r *Recorder) Size() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Size()
}

// LeafByTrace returns the encoded and decoded leaf most recently appended
// under the trace ID.
func (r *Recorder) LeafByTrace(trace uint64) (Leaf, []byte, uint64, bool) {
	if r == nil {
		return Leaf{}, nil, 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.byTrace[trace]
	if !ok {
		return Leaf{}, nil, 0, false
	}
	return r.decoded[idx], r.encoded[idx], idx, true
}

// LeafAt returns the encoded and decoded leaf at index.
func (r *Recorder) LeafAt(idx uint64) (Leaf, []byte, error) {
	if r == nil {
		return Leaf{}, nil, ErrEmpty
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx >= uint64(len(r.encoded)) {
		return Leaf{}, nil, fmt.Errorf("transcript: leaf %d out of range (size %d)", idx, len(r.encoded))
	}
	return r.decoded[idx], r.encoded[idx], nil
}

// InclusionProof proves leaf index under the tree of the given size.
func (r *Recorder) InclusionProof(index, size uint64) (*Proof, error) {
	if r == nil {
		return nil, ErrEmpty
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.InclusionProof(index, size)
}

// ConsistencyProof proves the size-m tree is a prefix of the size-n tree.
func (r *Recorder) ConsistencyProof(m, n uint64) (*Proof, error) {
	if r == nil {
		return nil, ErrEmpty
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.ConsistencyProof(m, n)
}

// Sample returns the newest retained replay sample at or below maxIndex
// (exclusive), i.e. one already covered by a published head of that size.
func (r *Recorder) Sample(maxSize uint64) (Sample, bool) {
	if r == nil {
		return Sample{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.samples) - 1; i >= 0; i-- {
		if r.samples[i].Index < maxSize {
			return r.samples[i], true
		}
	}
	return Sample{}, false
}
