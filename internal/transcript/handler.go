package transcript

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/wire"
)

// AuditDoc is the GET /audit response document. Binary fields (leaf, proof,
// sample inputs) travel base64 via encoding/json's []byte default; the leaf
// summary is decoded alongside for operators reading the JSON by eye.
type AuditDoc struct {
	// Head is the signed tree head every proof in the document targets.
	Head SignedHead `json:"head"`
	// Size is the live log size, which may run ahead of Head.Size.
	Size uint64 `json:"size"`
	// Dropped counts hot-path transcript events lost to backpressure.
	Dropped uint64 `json:"dropped"`
	// Leaf and LeafIndex are set for ?trace= and ?sample= requests: the
	// encoded leaf and its index under Head.
	Leaf      []byte  `json:"leaf,omitempty"`
	LeafIndex *uint64 `json:"leaf_index,omitempty"`
	// LeafView is the decoded leaf (informational; verifiers re-decode Leaf).
	LeafView *LeafView `json:"leaf_view,omitempty"`
	// Proof is the encoded inclusion (?trace=, ?sample=) or consistency
	// (?consistency=) proof.
	Proof []byte `json:"proof,omitempty"`
	// Inputs is the sampled batch's input tensor set in the public binary
	// request codec (?sample= only) — exactly what a replaying auditor
	// feeds a locally built engine.
	Inputs []byte `json:"inputs,omitempty"`
	// Bindings is the monitor's §4.3 binding log, when the host exposes it.
	Bindings json.RawMessage `json:"bindings,omitempty"`
	// Identity is the signing platform's public identity (JSON export), for
	// deployments whose platform is synthesized in process and therefore
	// has no bundle file an auditor could pin. Trust-on-first-use: an
	// auditor holding the bundle's platform identity must prefer that.
	Identity json.RawMessage `json:"identity,omitempty"`
}

// LeafView is the human-readable rendering of a leaf.
type LeafView struct {
	Trace       string   `json:"trace"`
	Batch       uint64   `json:"batch"`
	Input       Hash     `json:"input"`
	Checkpoints []Hash   `json:"checkpoints,omitempty"`
	Votes       []string `json:"votes,omitempty"`
	Output      Hash     `json:"output"`
	Rung        uint8    `json:"rung"`
	Replica     string   `json:"replica,omitempty"`
}

func viewOf(l Leaf) *LeafView {
	v := &LeafView{
		Trace:   fmt.Sprintf("%016x", l.Trace),
		Batch:   l.Batch,
		Input:   Hash(l.Input),
		Output:  Hash(l.Output),
		Rung:    l.Rung,
		Replica: l.Replica,
	}
	for _, d := range l.Checkpoints {
		v.Checkpoints = append(v.Checkpoints, Hash(d))
	}
	for _, vt := range l.Votes {
		verdict := "dissent"
		if vt.Agree {
			verdict = "agree"
		}
		v.Votes = append(v.Votes, fmt.Sprintf("%s:%s:%x", vt.Replica, verdict, vt.Sum[:8]))
	}
	return v
}

// HandlerConfig wires the audit endpoint to its host.
type HandlerConfig struct {
	// Bindings, when set, returns the binding log served alongside the head
	// (the monitor's []BindingRecord; any JSON-marshalable value works).
	Bindings func() any
	// Identity, when set, is the signing platform's exported public
	// identity, published in every document for trust-on-first-use
	// auditors.
	Identity []byte
}

// Handler serves GET /audit:
//
//	/audit                 -> signed head + live size (+ binding log)
//	/audit?trace=<hex>     -> leaf + inclusion proof for that trace ID
//	/audit?consistency=<n> -> consistency proof from size n to the head
//	/audit?sample=1        -> newest replayable leaf + proof + input tensors
//
// Proofs always target the returned head; when the requested leaf is newer
// than the last published head, a fresh head is signed first so the proof
// has something to verify against.
func Handler(rec *Recorder, cfg HandlerConfig) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if rec == nil {
			http.Error(w, "transcript disabled", http.StatusNotFound)
			return
		}
		q := req.URL.Query()
		var doc AuditDoc
		var err error
		switch {
		case q.Get("trace") != "":
			err = handleTrace(rec, q.Get("trace"), &doc)
		case q.Get("consistency") != "":
			err = handleConsistency(rec, q.Get("consistency"), &doc)
		case q.Get("sample") != "":
			err = handleSample(rec, &doc)
		default:
			doc.Head, err = rec.SignedHead(false)
			if err == nil && cfg.Bindings != nil {
				if b, merr := json.Marshal(cfg.Bindings()); merr == nil {
					doc.Bindings = b
				}
			}
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		doc.Size = rec.Size()
		doc.Dropped = rec.Dropped()
		doc.Identity = cfg.Identity
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&doc)
	})
}

func handleTrace(rec *Recorder, traceStr string, doc *AuditDoc) error {
	trace, err := strconv.ParseUint(traceStr, 16, 64)
	if err != nil {
		return fmt.Errorf("transcript: bad trace %q", traceStr)
	}
	leaf, enc, idx, ok := rec.LeafByTrace(trace)
	if !ok {
		return fmt.Errorf("transcript: no leaf for trace %016x", trace)
	}
	return attachInclusion(rec, leaf, enc, idx, doc)
}

func handleSample(rec *Recorder, doc *AuditDoc) error {
	head, err := rec.SignedHead(false)
	if err != nil {
		return err
	}
	smp, ok := rec.Sample(head.Head.Size)
	if !ok {
		// Nothing sampled under the published head yet; cover the live
		// tree and retry once.
		if head, err = rec.SignedHead(true); err != nil {
			return err
		}
		if smp, ok = rec.Sample(head.Head.Size); !ok {
			return fmt.Errorf("transcript: no replayable sample retained")
		}
	}
	_, enc, err := rec.LeafAt(smp.Index)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := wire.EncodeRequest(&buf, smp.Inputs); err != nil {
		return fmt.Errorf("transcript: encode sample inputs: %w", err)
	}
	doc.Inputs = buf.Bytes()
	return attachInclusion(rec, smp.Leaf, enc, smp.Index, doc)
}

func handleConsistency(rec *Recorder, sizeStr string, doc *AuditDoc) error {
	m, err := strconv.ParseUint(sizeStr, 10, 64)
	if err != nil {
		return fmt.Errorf("transcript: bad consistency size %q", sizeStr)
	}
	head, err := rec.SignedHead(false)
	if err != nil {
		return err
	}
	if m > head.Head.Size {
		if head, err = rec.SignedHead(true); err != nil {
			return err
		}
	}
	p, err := rec.ConsistencyProof(m, head.Head.Size)
	if err != nil {
		return err
	}
	pb, err := p.Marshal()
	if err != nil {
		return err
	}
	doc.Head, doc.Proof = head, pb
	return nil
}

func attachInclusion(rec *Recorder, leaf Leaf, enc []byte, idx uint64, doc *AuditDoc) error {
	head, err := rec.SignedHead(false)
	if err != nil {
		return err
	}
	if idx >= head.Head.Size {
		// Leaf is newer than the last published head; publish one covering it.
		if head, err = rec.SignedHead(true); err != nil {
			return err
		}
	}
	p, err := rec.InclusionProof(idx, head.Head.Size)
	if err != nil {
		return err
	}
	pb, err := p.Marshal()
	if err != nil {
		return err
	}
	i := idx
	doc.Head, doc.Leaf, doc.LeafIndex, doc.LeafView, doc.Proof = head, enc, &i, viewOf(leaf), pb
	return nil
}
