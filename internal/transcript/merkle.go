// Package transcript makes the monitor's cross-checking third-party
// checkable: every delivered batch appends one leaf — binding trace ID,
// batch ID, input digest, per-checkpoint digests, follower votes, output
// digest, ladder rung and replica — to an append-only Merkle log, and the
// serving tier periodically signs the tree head with its attestation
// identity, chained to the sealed model measurement and the §4.3 binding
// log. An auditor who holds a signed head can demand inclusion and
// consistency proofs, and because the kernels are bitwise-deterministic
// (PR 1), replay any sampled batch through a locally built engine from the
// sealed bundle and compare digests bit for bit — no zkML circuit, no blind
// trust in bare attestation.
//
// The tree is the RFC 6962 structure: leaf hash SHA-256(0x00 || leaf),
// interior node SHA-256(0x01 || left || right), with the standard inclusion
// and consistency proof shapes so third-party verifiers need nothing
// MVTEE-specific to check the log's append-only history.
package transcript

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// Hash is one 32-byte tree node value.
type Hash [32]byte

// MarshalJSON renders the hash as lowercase hex (operator-facing audit
// documents stay greppable).
func (h Hash) MarshalJSON() ([]byte, error) {
	return json.Marshal(hex.EncodeToString(h[:]))
}

// UnmarshalJSON parses the hex form.
func (h *Hash) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(h) {
		return fmt.Errorf("transcript: bad hash %q", s)
	}
	copy(h[:], raw)
	return nil
}

// LeafHash computes the RFC 6962 leaf hash of an encoded leaf.
func LeafHash(leaf []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(leaf)
	var out Hash
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree roots into their parent.
func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// EmptyRoot is the root of the zero-leaf tree (SHA-256 of the empty string).
func EmptyRoot() Hash { return sha256.Sum256(nil) }

// Log is an in-memory append-only Merkle tree over leaf hashes. Appends are
// O(log n) amortized via a perfect-subtree stack; proofs recompute subtree
// roots from the retained leaf hashes (audits are rare, appends are not).
// Log is not goroutine-safe; the Recorder serializes access.
type Log struct {
	leaves []Hash
	// stack holds the roots of the maximal perfect subtrees left-to-right;
	// bit i of len(leaves) set <=> a subtree of size 2^i is on the stack.
	stack []Hash
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Size returns the number of leaves appended.
func (l *Log) Size() uint64 { return uint64(len(l.leaves)) }

// Append adds one leaf hash and returns its index.
func (l *Log) Append(h Hash) uint64 {
	idx := uint64(len(l.leaves))
	l.leaves = append(l.leaves, h)
	for x := idx; x&1 == 1; x >>= 1 {
		top := l.stack[len(l.stack)-1]
		l.stack = l.stack[:len(l.stack)-1]
		h = nodeHash(top, h)
	}
	l.stack = append(l.stack, h)
	return idx
}

// Root returns the current tree head (MTH over all leaves).
func (l *Log) Root() Hash {
	if len(l.leaves) == 0 {
		return EmptyRoot()
	}
	r := l.stack[len(l.stack)-1]
	for i := len(l.stack) - 2; i >= 0; i-- {
		r = nodeHash(l.stack[i], r)
	}
	return r
}

// LeafAt returns the stored hash of leaf index i.
func (l *Log) LeafAt(i uint64) (Hash, error) {
	if i >= uint64(len(l.leaves)) {
		return Hash{}, fmt.Errorf("transcript: leaf %d out of range (size %d)", i, len(l.leaves))
	}
	return l.leaves[i], nil
}

// subtree computes MTH over leaves[lo:hi] (hi > lo).
func (l *Log) subtree(lo, hi uint64) Hash {
	if hi-lo == 1 {
		return l.leaves[lo]
	}
	k := largestPow2Below(hi - lo)
	return nodeHash(l.subtree(lo, lo+k), l.subtree(lo+k, hi))
}

// RootAt returns the tree head the log had when it held size leaves.
func (l *Log) RootAt(size uint64) (Hash, error) {
	if size > uint64(len(l.leaves)) {
		return Hash{}, fmt.Errorf("transcript: size %d beyond log (size %d)", size, len(l.leaves))
	}
	if size == 0 {
		return EmptyRoot(), nil
	}
	return l.subtree(0, size), nil
}

// largestPow2Below returns the largest power of two strictly less than n
// (n >= 2).
func largestPow2Below(n uint64) uint64 {
	k := uint64(1)
	for k<<1 < n {
		k <<= 1
	}
	return k
}

// Proof errors.
var (
	ErrProofRange = errors.New("transcript: proof request out of range")
	ErrProofBad   = errors.New("transcript: proof verification failed")
)

// InclusionProof returns the audit path for leaf index under the tree of the
// given size (RFC 6962 PATH(m, D[n])).
func (l *Log) InclusionProof(index, size uint64) (*Proof, error) {
	if size > uint64(len(l.leaves)) || index >= size {
		return nil, fmt.Errorf("%w: inclusion %d of %d (log size %d)", ErrProofRange, index, size, len(l.leaves))
	}
	return &Proof{Kind: ProofInclusion, First: index, Second: size, Path: l.path(index, 0, size)}, nil
}

func (l *Log) path(m, lo, hi uint64) []Hash {
	n := hi - lo
	if n == 1 {
		return nil
	}
	k := largestPow2Below(n)
	if m < k {
		return append(l.path(m, lo, lo+k), l.subtree(lo+k, hi))
	}
	return append(l.path(m-k, lo+k, hi), l.subtree(lo, lo+k))
}

// ConsistencyProof proves the tree of size m is a prefix of the tree of size
// n (RFC 6962 PROOF(m, D[n])).
func (l *Log) ConsistencyProof(m, n uint64) (*Proof, error) {
	if n > uint64(len(l.leaves)) || m > n {
		return nil, fmt.Errorf("%w: consistency %d -> %d (log size %d)", ErrProofRange, m, n, len(l.leaves))
	}
	p := &Proof{Kind: ProofConsistency, First: m, Second: n}
	if m == 0 || m == n {
		return p, nil
	}
	p.Path = l.subproof(m, 0, n, true)
	return p, nil
}

func (l *Log) subproof(m, lo, hi uint64, complete bool) []Hash {
	n := hi - lo
	if m == n {
		if complete {
			return nil
		}
		return []Hash{l.subtree(lo, hi)}
	}
	k := largestPow2Below(n)
	if m <= k {
		return append(l.subproof(m, lo, lo+k, complete), l.subtree(lo+k, hi))
	}
	return append(l.subproof(m-k, lo+k, hi, false), l.subtree(lo, lo+k))
}

// VerifyInclusion checks an audit path: that leafHash is the leaf at
// proof.First in the tree of size proof.Second with the given root
// (RFC 9162 §2.1.3.2).
func VerifyInclusion(leafHash Hash, p *Proof, root Hash) error {
	if p == nil || p.Kind != ProofInclusion {
		return fmt.Errorf("%w: not an inclusion proof", ErrProofBad)
	}
	index, size := p.First, p.Second
	if size == 0 || index >= size {
		return fmt.Errorf("%w: index %d outside tree of size %d", ErrProofBad, index, size)
	}
	fn, sn := index, size-1
	r := leafHash
	for _, h := range p.Path {
		if sn == 0 {
			return fmt.Errorf("%w: proof too long", ErrProofBad)
		}
		if fn&1 == 1 || fn == sn {
			r = nodeHash(h, r)
			if fn&1 == 0 {
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			r = nodeHash(r, h)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 {
		return fmt.Errorf("%w: proof too short", ErrProofBad)
	}
	if r != root {
		return fmt.Errorf("%w: computed root mismatch", ErrProofBad)
	}
	return nil
}

// VerifyConsistency checks that the tree of size p.First with root first is
// a prefix of the tree of size p.Second with root second
// (RFC 9162 §2.1.4.2).
func VerifyConsistency(p *Proof, first, second Hash) error {
	if p == nil || p.Kind != ProofConsistency {
		return fmt.Errorf("%w: not a consistency proof", ErrProofBad)
	}
	m, n := p.First, p.Second
	if m > n {
		return fmt.Errorf("%w: first size %d exceeds second %d", ErrProofBad, m, n)
	}
	if m == n {
		if len(p.Path) != 0 || first != second {
			return fmt.Errorf("%w: equal-size trees must match with empty proof", ErrProofBad)
		}
		return nil
	}
	if m == 0 {
		// Every tree extends the empty tree; the old root must be the
		// canonical empty-tree value.
		if len(p.Path) != 0 || first != EmptyRoot() {
			return fmt.Errorf("%w: empty-tree consistency must carry no path", ErrProofBad)
		}
		return nil
	}
	path := p.Path
	// An exact-power-of-two old tree is itself a node of the new tree; its
	// root seeds the walk.
	if m&(m-1) == 0 {
		path = append([]Hash{first}, path...)
	}
	if len(path) == 0 {
		return fmt.Errorf("%w: missing consistency path", ErrProofBad)
	}
	fn, sn := m-1, n-1
	for fn&1 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := path[0], path[0]
	for _, h := range path[1:] {
		if sn == 0 {
			return fmt.Errorf("%w: proof too long", ErrProofBad)
		}
		if fn&1 == 1 || fn == sn {
			fr = nodeHash(h, fr)
			sr = nodeHash(h, sr)
			if fn&1 == 0 {
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			sr = nodeHash(sr, h)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 {
		return fmt.Errorf("%w: proof too short", ErrProofBad)
	}
	if fr != first {
		return fmt.Errorf("%w: first root mismatch", ErrProofBad)
	}
	if sr != second {
		return fmt.Errorf("%w: second root mismatch", ErrProofBad)
	}
	return nil
}
