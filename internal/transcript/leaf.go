package transcript

import (
	"encoding/binary"
	"fmt"

	"repro/internal/check"
)

// Vote is one follower's digest verdict on a batch, recorded into the
// leader's leaf so cross-node dissent is auditable after the fact: a
// follower that disagreed is on the permanent record even if the operator
// later scrubs its logs.
type Vote struct {
	Replica string
	Sum     check.Digest
	Agree   bool
}

// Leaf is one delivered batch's transcript entry. It binds everything an
// auditor needs to re-derive the batch: the trace ID (the cross-node join
// key from PR 4), the engine batch ID, the canonical input digest, the
// per-checkpoint digests in stage order, the follower votes (cluster mode),
// the canonical output digest, the worst ladder rung at delivery, and the
// serving replica.
type Leaf struct {
	Trace       uint64
	Batch       uint64
	Input       check.Digest
	Checkpoints []check.Digest
	Votes       []Vote
	Output      check.Digest
	Rung        uint8
	Replica     string
}

// Leaf wire format: "MVTL" magic + version, fixed header, then the
// variable-length checkpoint, vote and replica sections, every count
// bounded. The encoding is canonical (no map iteration, no optional
// fields), so equal leaves encode identically and the leaf hash is
// well-defined.
const (
	leafMagic   = "MVTL"
	leafVersion = 1
	// MaxLeafCheckpoints and MaxLeafVotes bound the variable sections; both
	// are far above any real pipeline depth or replica count.
	MaxLeafCheckpoints = 256
	MaxLeafVotes       = 256
	maxLeafString      = 255
)

// Marshal encodes the leaf canonically.
func (l *Leaf) Marshal() ([]byte, error) {
	if len(l.Checkpoints) > MaxLeafCheckpoints {
		return nil, fmt.Errorf("transcript: leaf has %d checkpoints (max %d)", len(l.Checkpoints), MaxLeafCheckpoints)
	}
	if len(l.Votes) > MaxLeafVotes {
		return nil, fmt.Errorf("transcript: leaf has %d votes (max %d)", len(l.Votes), MaxLeafVotes)
	}
	if len(l.Replica) > maxLeafString {
		return nil, fmt.Errorf("transcript: replica ID too long (%d)", len(l.Replica))
	}
	size := 5 + 8 + 8 + 32 + 2 + 32*len(l.Checkpoints) + 2 + 32 + 1 + 1 + len(l.Replica)
	for _, v := range l.Votes {
		if len(v.Replica) > maxLeafString {
			return nil, fmt.Errorf("transcript: vote replica ID too long (%d)", len(v.Replica))
		}
		size += 1 + len(v.Replica) + 32 + 1
	}
	out := make([]byte, 0, size)
	out = append(out, leafMagic...)
	out = append(out, leafVersion)
	out = binary.LittleEndian.AppendUint64(out, l.Trace)
	out = binary.LittleEndian.AppendUint64(out, l.Batch)
	out = append(out, l.Input[:]...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(l.Checkpoints)))
	for _, d := range l.Checkpoints {
		out = append(out, d[:]...)
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(l.Votes)))
	for _, v := range l.Votes {
		out = append(out, byte(len(v.Replica)))
		out = append(out, v.Replica...)
		out = append(out, v.Sum[:]...)
		if v.Agree {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	out = append(out, l.Output[:]...)
	out = append(out, l.Rung)
	out = append(out, byte(len(l.Replica)))
	out = append(out, l.Replica...)
	return out, nil
}

// UnmarshalLeaf decodes one leaf, rejecting trailing bytes.
func UnmarshalLeaf(b []byte) (*Leaf, error) {
	r := leafReader{b: b}
	magic := r.bytes(4)
	ver := r.u8()
	if r.err != nil || string(magic) != leafMagic {
		return nil, fmt.Errorf("transcript: bad leaf magic")
	}
	if ver != leafVersion {
		return nil, fmt.Errorf("transcript: unsupported leaf version %d", ver)
	}
	var l Leaf
	l.Trace = r.u64()
	l.Batch = r.u64()
	copy(l.Input[:], r.bytes(32))
	nc := int(r.u16())
	if r.err == nil && nc > MaxLeafCheckpoints {
		return nil, fmt.Errorf("transcript: leaf checkpoint count %d over cap", nc)
	}
	if r.err == nil && nc > 0 {
		l.Checkpoints = make([]check.Digest, nc)
		for i := range l.Checkpoints {
			copy(l.Checkpoints[i][:], r.bytes(32))
		}
	}
	nv := int(r.u16())
	if r.err == nil && nv > MaxLeafVotes {
		return nil, fmt.Errorf("transcript: leaf vote count %d over cap", nv)
	}
	if r.err == nil && nv > 0 {
		l.Votes = make([]Vote, nv)
		for i := range l.Votes {
			l.Votes[i].Replica = string(r.bytes(int(r.u8())))
			copy(l.Votes[i].Sum[:], r.bytes(32))
			flag := r.u8()
			if r.err == nil && flag > 1 {
				// Only 0/1 encode; anything else would decode-then-re-encode
				// differently and break leaf-hash canonicality.
				return nil, fmt.Errorf("transcript: bad vote flag %d", flag)
			}
			l.Votes[i].Agree = flag == 1
		}
	}
	copy(l.Output[:], r.bytes(32))
	l.Rung = r.u8()
	l.Replica = string(r.bytes(int(r.u8())))
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != r.off {
		return nil, fmt.Errorf("transcript: %d trailing bytes after leaf", len(r.b)-r.off)
	}
	return &l, nil
}

// leafReader is a bounds-checked cursor; the first failure sticks.
type leafReader struct {
	b   []byte
	off int
	err error
}

func (r *leafReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("transcript: leaf truncated at offset %d", r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *leafReader) u8() uint8 {
	b := r.bytes(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *leafReader) u16() uint16 {
	b := r.bytes(2)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *leafReader) u64() uint64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
