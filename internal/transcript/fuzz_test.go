package transcript

import (
	"bytes"
	"testing"
)

// FuzzTranscriptProof exercises the proof decoder — the attacker-facing
// parser of the audit plane (proof bytes arrive from an untrusted serving
// host). Properties: never panic, never accept-then-fail-to-reencode, and
// round-trip canonically (decode -> encode -> decode yields the same bytes
// and structure). Seed corpus: testdata/fuzz/FuzzTranscriptProof
// (regenerate with scripts/genfuzzcorpus).
func FuzzTranscriptProof(f *testing.F) {
	l := NewLog()
	for i := 0; i < 33; i++ {
		l.Append(LeafHash([]byte{byte(i)}))
	}
	if p, err := l.InclusionProof(7, 33); err == nil {
		if b, err := p.Marshal(); err == nil {
			f.Add(b)
		}
	}
	if p, err := l.ConsistencyProof(16, 33); err == nil {
		if b, err := p.Marshal(); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("MVTP\x01\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalProof(data)
		if err != nil {
			return
		}
		enc, err := p.Marshal()
		if err != nil {
			t.Fatalf("decoded proof failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("proof encoding not canonical: %x -> %x", data, enc)
		}
		p2, err := UnmarshalProof(enc)
		if err != nil {
			t.Fatalf("re-encoded proof failed to decode: %v", err)
		}
		if p2.Kind != p.Kind || p2.First != p.First || p2.Second != p.Second || len(p2.Path) != len(p.Path) {
			t.Fatalf("round-trip mismatch: %+v != %+v", p2, p)
		}
		// A decoded proof must be safe to verify against arbitrary roots
		// (verification may fail, but must not panic or loop).
		switch p.Kind {
		case ProofInclusion:
			_ = VerifyInclusion(LeafHash([]byte("x")), p, Hash{})
		case ProofConsistency:
			_ = VerifyConsistency(p, Hash{}, Hash{})
		}
	})
}

// FuzzTranscriptLeaf holds the leaf decoder to the same bar: leaves also
// cross the trust boundary inside audit documents.
func FuzzTranscriptLeaf(f *testing.F) {
	l := testLeaf()
	if b, err := l.Marshal(); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte("MVTL\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		leaf, err := UnmarshalLeaf(data)
		if err != nil {
			return
		}
		enc, err := leaf.Marshal()
		if err != nil {
			t.Fatalf("decoded leaf failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("leaf encoding not canonical: %x -> %x", data, enc)
		}
	})
}
