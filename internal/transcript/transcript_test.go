package transcript

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/check"
	"repro/internal/enclave"
	"repro/internal/tensor"
)

func testLeaf() Leaf {
	var in, out, c0, c1, v0 check.Digest
	in[0], out[0], c0[0], c1[0], v0[0] = 1, 2, 3, 4, 5
	return Leaf{
		Trace:       0xfeedbeef,
		Batch:       42,
		Input:       in,
		Checkpoints: []check.Digest{c0, c1},
		Votes: []Vote{
			{Replica: "r1", Sum: v0, Agree: true},
			{Replica: "r2", Sum: v0, Agree: false},
		},
		Output:  out,
		Rung:    3,
		Replica: "r0",
	}
}

func TestLeafCodecRoundTrip(t *testing.T) {
	cases := []Leaf{
		testLeaf(),
		{},                             // all-zero leaf
		{Trace: 1, Batch: 2},           // no checkpoints, no votes
		{Replica: "only-replica"},      // string without votes
		{Votes: []Vote{{Agree: true}}}, // empty replica name in vote
	}
	for i, l := range cases {
		b, err := l.Marshal()
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		got, err := UnmarshalLeaf(b)
		if err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		b2, err := got.Marshal()
		if err != nil {
			t.Fatalf("case %d: re-marshal: %v", i, err)
		}
		if string(b) != string(b2) {
			t.Fatalf("case %d: round-trip not canonical", i)
		}
		if _, err := UnmarshalLeaf(b[:len(b)-1]); err == nil {
			t.Fatalf("case %d: truncated leaf accepted", i)
		}
		if _, err := UnmarshalLeaf(append(append([]byte(nil), b...), 7)); err == nil {
			t.Fatalf("case %d: trailing byte accepted", i)
		}
	}
}

// testIdentity launches a signing enclave with the standard monitor image
// shape and a verifier trusting its platform.
func testIdentity(t *testing.T) (*enclave.Enclave, *enclave.Verifier) {
	t.Helper()
	plat, err := enclave.NewPlatform("audit-plat", enclave.SGX2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.Launch(enclave.Image{Name: "mvtee-monitor", Code: []byte("mvtee monitor v1"), InitialPages: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	v := enclave.NewVerifier()
	v.Trust(plat)
	return encl, v
}

func TestSignedHeadVerifies(t *testing.T) {
	encl, v := testIdentity(t)
	var model, bindings Hash
	model[0], bindings[0] = 0xaa, 0xbb
	h := TreeHead{Size: 9, Root: Hash{1}, Model: model, Bindings: bindings, TimeNs: 12345}
	sh, err := SignHead(encl, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHead(v, sh, []enclave.Measurement{encl.Measurement()}); err != nil {
		t.Fatalf("honest head rejected: %v", err)
	}
	if err := CheckChain(sh.Head, model, &bindings); err != nil {
		t.Fatalf("honest chain rejected: %v", err)
	}

	// Forged head: any altered field breaks the report binding.
	forged := sh
	forged.Head.Size++
	if err := VerifyHead(v, forged, nil); err == nil {
		t.Fatal("size-tampered head verified")
	}
	forged = sh
	forged.Head.Root[5] ^= 1
	if err := VerifyHead(v, forged, nil); err == nil {
		t.Fatal("root-tampered head verified")
	}
	// Unsigned head.
	if err := VerifyHead(v, SignedHead{Head: h}, nil); err == nil {
		t.Fatal("unsigned head verified")
	}
	// Wrong signing identity: an untrusted platform's report must fail.
	otherPlat, err := enclave.NewPlatform("rogue", enclave.SGX2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := otherPlat.Launch(enclave.Image{Name: "rogue", Code: []byte("rogue"), InitialPages: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	forgedSig, err := SignHead(rogue, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHead(v, forgedSig, nil); err == nil {
		t.Fatal("head signed by untrusted platform verified")
	}
	// Wrong measurement pin: trusted platform, unexpected enclave image.
	v.Trust(otherPlat)
	if err := VerifyHead(v, forgedSig, []enclave.Measurement{encl.Measurement()}); err == nil {
		t.Fatal("head from wrong enclave image passed measurement pin")
	}
	// Chain mismatch.
	var wrongModel Hash
	wrongModel[0] = 0xcc
	if err := CheckChain(sh.Head, wrongModel, nil); err == nil {
		t.Fatal("wrong model digest passed chain check")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func testInputs(seed float32) map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{
		"x": tensor.MustFromSlice([]float32{seed, seed + 1, seed + 2, seed + 3}, 2, 2),
	}
}

func TestRecorderBuildsLeaves(t *testing.T) {
	encl, v := testIdentity(t)
	var model Hash
	model[0] = 0x11
	rec := NewRecorder(Config{Signer: encl, Model: model, HeadEvery: 4, SampleEvery: 1})
	defer rec.Close()

	var d0, d1 check.Digest
	d0[0], d1[0] = 7, 8
	for i := uint64(1); i <= 10; i++ {
		in := testInputs(float32(i))
		out := testInputs(float32(i) * 100)
		rec.Begin(i*1000, i, in)
		rec.Checkpoint(i, 0, d0)
		rec.Checkpoint(i, 1, d1)
		rec.Vote(i, "follower-1", d1, true)
		rec.Deliver(i, out, 3, "leader")
	}
	// A failed batch must leave no leaf.
	rec.Begin(99000, 99, testInputs(9))
	rec.Abort(99)

	waitFor(t, "10 leaves", func() bool { return rec.Size() == 10 })

	leaf, enc, idx, ok := rec.LeafByTrace(5000)
	if !ok {
		t.Fatal("no leaf for trace 5000")
	}
	if leaf.Batch != 5 || idx != 4 {
		t.Fatalf("trace 5000 -> batch %d index %d", leaf.Batch, idx)
	}
	if leaf.Input != check.DigestOf(testInputs(5)) {
		t.Fatal("leaf input digest does not match submitted inputs")
	}
	if leaf.Output != check.DigestOf(testInputs(500)) {
		t.Fatal("leaf output digest does not match delivered outputs")
	}
	if len(leaf.Checkpoints) != 2 || leaf.Checkpoints[0] != d0 || leaf.Checkpoints[1] != d1 {
		t.Fatalf("leaf checkpoints wrong: %v", leaf.Checkpoints)
	}
	if len(leaf.Votes) != 1 || leaf.Votes[0].Replica != "follower-1" || !leaf.Votes[0].Agree {
		t.Fatalf("leaf votes wrong: %+v", leaf.Votes)
	}
	if leaf.Rung != 3 || leaf.Replica != "leader" {
		t.Fatalf("leaf rung/replica wrong: %d %q", leaf.Rung, leaf.Replica)
	}
	if _, ok := rec.byTraceLookup(99000); ok {
		t.Fatal("aborted batch left a leaf")
	}

	// The head covers the log and the inclusion proof verifies.
	sh, err := rec.SignedHead(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHead(v, sh, []enclave.Measurement{encl.Measurement()}); err != nil {
		t.Fatalf("recorder head rejected: %v", err)
	}
	if sh.Head.Model != model {
		t.Fatal("head does not chain the model digest")
	}
	if sh.Head.Size < idx+1 {
		sh, err = rec.SignedHead(true)
		if err != nil {
			t.Fatal(err)
		}
	}
	p, err := rec.InclusionProof(idx, sh.Head.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyInclusion(LeafHash(enc), p, sh.Head.Root); err != nil {
		t.Fatalf("inclusion of recorded leaf failed: %v", err)
	}
}

// byTraceLookup is a test helper exposing the trace index without leaf copies.
func (r *Recorder) byTraceLookup(trace uint64) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.byTrace[trace]
	return idx, ok
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Begin(1, 1, nil)
	rec.Checkpoint(1, 0, check.Digest{})
	rec.Vote(1, "r", check.Digest{}, true)
	rec.Deliver(1, nil, 0, "")
	rec.Abort(1)
	rec.Close()
	if rec.Size() != 0 || rec.Dropped() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if _, err := rec.SignedHead(true); err == nil {
		t.Fatal("nil recorder produced a head")
	}
}

// TestAuditEndToEnd drives the full auditor loop over the HTTP handler:
// clean verification passes; a flipped output bit, a truncated/rewritten
// log and a forged head are each rejected.
func TestAuditEndToEnd(t *testing.T) {
	encl, v := testIdentity(t)
	var model Hash
	model[0] = 0x42
	rec := NewRecorder(Config{Signer: encl, Model: model, HeadEvery: 4, SampleEvery: 1})
	defer rec.Close()

	// Deterministic stand-in engine: output = input scaled. Bitwise
	// deterministic, so replay reproduces it exactly.
	run := func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
		out := make(map[string]*tensor.Tensor, len(in))
		for k, tt := range in {
			d := tt.Data()
			scaled := make([]float32, len(d))
			for i, f := range d {
				scaled[i] = f * 2
			}
			shape := make([]int, tt.Dims())
			for i := range shape {
				shape[i] = tt.Dim(i)
			}
			out[k] = tensor.MustFromSlice(scaled, shape...)
		}
		return out, nil
	}
	for i := uint64(1); i <= 9; i++ {
		in := testInputs(float32(i))
		out, _ := run(in)
		rec.Begin(i*10, i, in)
		rec.Checkpoint(i, 0, check.DigestOf(out))
		rec.Deliver(i, out, 3, "node-a")
	}
	waitFor(t, "9 leaves", func() bool { return rec.Size() == 9 })

	srv := httptest.NewServer(Handler(rec, HandlerConfig{}))
	defer srv.Close()

	aud := &Auditor{Verifier: v, Measurements: []enclave.Measurement{encl.Measurement()}, Model: model}

	// 1. Clean run: head, per-trace inclusion, sample replay, consistency.
	headDoc, err := Fetch(srv.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aud.VerifyDoc(headDoc); err != nil {
		t.Fatalf("clean head rejected: %v", err)
	}
	traceDoc, err := Fetch(srv.URL, "trace="+"00000000000000"+"32") // trace 0x32 = 50 = batch 5
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := aud.VerifyDoc(traceDoc)
	if err != nil {
		t.Fatalf("clean trace doc rejected: %v", err)
	}
	if leaf == nil || leaf.Batch != 5 {
		t.Fatalf("trace doc returned wrong leaf: %+v", leaf)
	}
	sampleDoc, err := Fetch(srv.URL, "sample=1")
	if err != nil {
		t.Fatal(err)
	}
	sampleLeaf, err := aud.VerifyDoc(sampleDoc)
	if err != nil {
		t.Fatalf("clean sample doc rejected: %v", err)
	}
	if err := Replay(sampleLeaf, sampleDoc.Inputs, run); err != nil {
		t.Fatalf("clean replay failed: %v", err)
	}
	consDoc, err := Fetch(srv.URL, "consistency=4")
	if err != nil {
		t.Fatal(err)
	}
	oldRoot, err := rec.log.RootAt(4)
	if err != nil {
		t.Fatal(err)
	}
	pinned := TreeHead{Size: 4, Root: oldRoot}
	if err := aud.VerifyConsistencyWith(pinned, consDoc); err != nil {
		t.Fatalf("clean consistency rejected: %v", err)
	}

	// 2. Flipped output bit: a tampered engine result fails replay.
	tampered := func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
		out, _ := run(in)
		for _, tt := range out {
			tt.Data()[0] += 1e-6 // one ULP-ish nudge — still caught bitwise
			break
		}
		return out, nil
	}
	if err := Replay(sampleLeaf, sampleDoc.Inputs, tampered); err == nil {
		t.Fatal("flipped output bit passed replay")
	} else if !strings.Contains(err.Error(), "replay mismatch") {
		t.Fatalf("flipped output bit failed with wrong error: %v", err)
	}
	// A tampered served leaf fails the inclusion proof before any replay.
	badLeafDoc := *traceDoc
	badLeafDoc.Leaf = append([]byte(nil), traceDoc.Leaf...)
	badLeafDoc.Leaf[len(badLeafDoc.Leaf)-10] ^= 1
	if _, err := aud.VerifyDoc(&badLeafDoc); err == nil {
		t.Fatal("tampered leaf passed inclusion verification")
	}
	// Tampered sample inputs fail the input-digest binding.
	badInputs := append([]byte(nil), sampleDoc.Inputs...)
	badInputs[len(badInputs)-1] ^= 1
	if err := Replay(sampleLeaf, badInputs, run); err == nil {
		t.Fatal("tampered sample inputs passed replay")
	}

	// 3. Truncated/rewritten log: a server that rewrote history cannot
	// produce a consistency proof against the pinned head.
	rec2 := NewRecorder(Config{Signer: encl, Model: model, HeadEvery: 4})
	defer rec2.Close()
	for i := uint64(1); i <= 9; i++ {
		in := testInputs(float32(i) + 0.5) // different history
		out, _ := run(in)
		rec2.Begin(i*10, i, in)
		rec2.Deliver(i, out, 3, "node-a")
	}
	waitFor(t, "rewritten leaves", func() bool { return rec2.Size() == 9 })
	srv2 := httptest.NewServer(Handler(rec2, HandlerConfig{}))
	defer srv2.Close()
	rewrittenCons, err := Fetch(srv2.URL, "consistency=4")
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.VerifyConsistencyWith(pinned, rewrittenCons); err == nil {
		t.Fatal("rewritten log produced a valid consistency proof against the pinned head")
	}

	// 4. Forged head: wrong model chain and wrong signing identity.
	wrongModelAud := &Auditor{Verifier: v, Measurements: []enclave.Measurement{encl.Measurement()}, Model: Hash{0x99}}
	if _, err := wrongModelAud.VerifyDoc(headDoc); err == nil {
		t.Fatal("head chained to a different model passed")
	}
	strangerV := enclave.NewVerifier() // trusts nobody
	strangerAud := &Auditor{Verifier: strangerV, Model: model}
	if _, err := strangerAud.VerifyDoc(headDoc); err == nil {
		t.Fatal("head verified without a trusted platform")
	}
}

func TestHeadContextSeparation(t *testing.T) {
	// A report bound to a different attestation context (e.g. a channel
	// report) must not validate as a head report even over the same bytes.
	encl, v := testIdentity(t)
	h := TreeHead{Size: 1, Root: Hash{1}}
	r, err := attest.Respond(encl, h.digest(), "some-other-context")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHead(v, SignedHead{Head: h, Report: rb}, nil); err == nil {
		t.Fatal("cross-context report accepted as head signature")
	}
}
