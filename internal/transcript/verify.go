package transcript

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/check"
	"repro/internal/enclave"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Auditor verifies audit documents offline against a trust anchor set, an
// expected monitor measurement and the sealed model digest — everything an
// operator derives from the bundle directory, nothing from the serving
// host.
type Auditor struct {
	// Verifier holds the trusted platform identities.
	Verifier *enclave.Verifier
	// Measurements are the acceptable signing-enclave measurements (the
	// monitor image); empty skips the measurement pin.
	Measurements []enclave.Measurement
	// Model is the locally recomputed sealed model digest.
	Model Hash
}

// Verification errors.
var (
	ErrTamper = errors.New("transcript: tamper detected")
	ErrReplay = errors.New("transcript: replay mismatch")
)

// VerifyDoc checks one audit document end to end: head signature and chain,
// then whichever proof the document carries (inclusion when a leaf is
// present, consistency otherwise). It returns the decoded leaf for
// documents that carry one so callers can replay it.
func (a *Auditor) VerifyDoc(doc *AuditDoc) (*Leaf, error) {
	if err := VerifyHead(a.Verifier, doc.Head, a.Measurements); err != nil {
		return nil, fmt.Errorf("%w: head: %v", ErrTamper, err)
	}
	if err := CheckChain(doc.Head.Head, a.Model, nil); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTamper, err)
	}
	if doc.Proof == nil {
		return nil, nil
	}
	p, err := UnmarshalProof(doc.Proof)
	if err != nil {
		return nil, fmt.Errorf("%w: proof: %v", ErrTamper, err)
	}
	switch p.Kind {
	case ProofInclusion:
		if doc.Leaf == nil || doc.LeafIndex == nil {
			return nil, fmt.Errorf("%w: inclusion proof without leaf", ErrTamper)
		}
		if *doc.LeafIndex != p.First || doc.Head.Head.Size != p.Second {
			return nil, fmt.Errorf("%w: proof indices do not match document", ErrTamper)
		}
		if err := VerifyInclusion(LeafHash(doc.Leaf), p, doc.Head.Head.Root); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTamper, err)
		}
		leaf, err := UnmarshalLeaf(doc.Leaf)
		if err != nil {
			return nil, fmt.Errorf("%w: leaf: %v", ErrTamper, err)
		}
		return leaf, nil
	case ProofConsistency:
		if p.Second != doc.Head.Head.Size {
			return nil, fmt.Errorf("%w: consistency proof does not target the head", ErrTamper)
		}
		// The caller supplies the old root via VerifyConsistencyWith; a bare
		// VerifyDoc can only check the new side.
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: unknown proof kind", ErrTamper)
	}
}

// VerifyConsistencyWith checks a consistency document against a previously
// trusted head (the auditor's pinned checkpoint): the old tree must be a
// prefix of the new one, or the log was rewritten.
func (a *Auditor) VerifyConsistencyWith(old TreeHead, doc *AuditDoc) error {
	if _, err := a.VerifyDoc(doc); err != nil {
		return err
	}
	if doc.Proof == nil {
		return fmt.Errorf("%w: missing consistency proof", ErrTamper)
	}
	p, err := UnmarshalProof(doc.Proof)
	if err != nil {
		return fmt.Errorf("%w: proof: %v", ErrTamper, err)
	}
	if p.Kind != ProofConsistency || p.First != old.Size {
		return fmt.Errorf("%w: proof does not extend the pinned head", ErrTamper)
	}
	if err := VerifyConsistency(p, old.Root, doc.Head.Head.Root); err != nil {
		return fmt.Errorf("%w: %v", ErrTamper, err)
	}
	return nil
}

// ReplayFunc runs one batch through a locally built engine.
type ReplayFunc func(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error)

// Replay re-executes a sampled batch and compares digests bit for bit: the
// input tensors must hash to the leaf's input digest (the served inputs are
// the ones the leaf commits to) and the replayed outputs must hash to the
// leaf's output digest. Any flipped bit in either direction fails.
func Replay(leaf *Leaf, inputsEnc []byte, run ReplayFunc) error {
	inputs, err := wire.DecodeRequest(bytes.NewReader(inputsEnc), nil)
	if err != nil {
		return fmt.Errorf("%w: decode sample inputs: %v", ErrTamper, err)
	}
	if got := check.DigestOf(inputs); got != check.Digest(leaf.Input) {
		return fmt.Errorf("%w: sample inputs do not hash to the leaf input digest", ErrTamper)
	}
	outs, err := run(inputs)
	if err != nil {
		return fmt.Errorf("transcript: replay execution: %w", err)
	}
	if got := check.DigestOf(outs); got != check.Digest(leaf.Output) {
		return fmt.Errorf("%w: replayed output digest %x != transcript %x", ErrReplay, got[:8], leaf.Output[:8])
	}
	return nil
}

// Fetch retrieves one audit document from a serving host's /audit endpoint.
// query is the raw query string ("", "trace=<hex>", "consistency=<n>",
// "sample=1").
func Fetch(baseURL, query string) (*AuditDoc, error) {
	url := baseURL + "/audit"
	if query != "" {
		url += "?" + query
	}
	c := &http.Client{Timeout: 30 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, fmt.Errorf("transcript: fetch audit: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("transcript: fetch audit: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transcript: audit endpoint: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var doc AuditDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("transcript: decode audit document: %w", err)
	}
	return &doc, nil
}
