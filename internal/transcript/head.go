package transcript

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/attest"
	"repro/internal/enclave"
)

// TreeHead is one published checkpoint of the log: the tree size and root,
// chained to the sealed model measurement digest and the monitor's §4.3
// binding-log digest so what the head attests is not just "these batches
// ran" but "these batches ran against this sealed model under this variant
// membership history".
type TreeHead struct {
	Size     uint64 `json:"size"`
	Root     Hash   `json:"root"`
	Model    Hash   `json:"model"`
	Bindings Hash   `json:"bindings"`
	TimeNs   int64  `json:"time_ns"`
}

// headContext is the attestation binding label for signed heads: the report
// data of a head's report is BindNonce(head digest, headContext), so a head
// report can never be confused with a channel or provisioning report.
const headContext = "transcript-head"

// digest is the canonical encoding of every head field. It is handed to
// attest as the challenge nonce: BindNonce hashes it with the context label
// into the report data, so sign and verify derive identical bindings from
// the head alone.
func (h *TreeHead) digest() []byte {
	buf := make([]byte, 0, 5+8+32*3+8)
	buf = append(buf, "MVTH"...)
	buf = append(buf, 1)
	buf = binary.LittleEndian.AppendUint64(buf, h.Size)
	buf = append(buf, h.Root[:]...)
	buf = append(buf, h.Model[:]...)
	buf = append(buf, h.Bindings[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.TimeNs))
	return buf
}

// SignedHead is a tree head plus the attestation report vouching for it.
// Report is the marshalled enclave report whose report data binds the head
// digest; an unsigned head (test recorders without an identity) has an
// empty Report and fails VerifyHead.
type SignedHead struct {
	Head   TreeHead        `json:"head"`
	Report json.RawMessage `json:"report,omitempty"`
}

// SignHead produces a signed head with the given attestation identity (the
// monitor enclave in-process, the router's identity enclave in cluster
// mode).
func SignHead(a attest.Attester, h TreeHead) (SignedHead, error) {
	r, err := attest.Respond(a, h.digest(), headContext)
	if err != nil {
		return SignedHead{}, fmt.Errorf("transcript: sign head: %w", err)
	}
	rb, err := r.Marshal()
	if err != nil {
		return SignedHead{}, fmt.Errorf("transcript: sign head: %w", err)
	}
	return SignedHead{Head: h, Report: rb}, nil
}

// Head verification errors.
var (
	ErrHeadUnsigned = errors.New("transcript: head is unsigned")
	ErrHeadChain    = errors.New("transcript: head chain mismatch")
)

// VerifyHead checks the head's attestation report: a valid signature from a
// trusted platform, an expected measurement when provided, and report data
// binding exactly this head's canonical digest. A forged head — wrong key,
// wrong measurement, or a report lifted from a different head — fails here.
func VerifyHead(v *enclave.Verifier, sh SignedHead, expected []enclave.Measurement) error {
	if len(sh.Report) == 0 {
		return ErrHeadUnsigned
	}
	r, err := enclave.UnmarshalReport(sh.Report)
	if err != nil {
		return fmt.Errorf("transcript: verify head: %w", err)
	}
	return attest.Check(v, r, sh.Head.digest(), headContext, expected)
}

// CheckChain verifies the head's chain values against locally recomputed
// ones: the sealed model measurement digest from the bundle, and (when the
// auditor obtained the binding log) the binding-log digest.
func CheckChain(h TreeHead, model Hash, bindings *Hash) error {
	if h.Model != model {
		return fmt.Errorf("%w: model digest %x != bundle %x", ErrHeadChain, h.Model[:8], model[:8])
	}
	if bindings != nil && h.Bindings != *bindings {
		return fmt.Errorf("%w: binding-log digest %x != recomputed %x", ErrHeadChain, h.Bindings[:8], (*bindings)[:8])
	}
	return nil
}
