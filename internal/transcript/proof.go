package transcript

import (
	"encoding/binary"
	"fmt"
)

// ProofKind discriminates the two RFC 6962 proof shapes.
type ProofKind uint8

// Proof kinds.
const (
	ProofInclusion   ProofKind = 1
	ProofConsistency ProofKind = 2
)

// Proof is one inclusion or consistency proof. For inclusion, First is the
// leaf index and Second the tree size; for consistency, First and Second are
// the old and new tree sizes.
type Proof struct {
	Kind   ProofKind
	First  uint64
	Second uint64
	Path   []Hash
}

// Proof wire format: "MVTP" magic, version byte, kind byte, two u64
// little-endian sizes, u16 path length, then 32 bytes per path entry. The
// decoder is the attacker-facing surface (audit responses cross trust
// boundaries), so every length is validated before allocation.
const (
	proofMagic   = "MVTP"
	proofVersion = 1
	// MaxProofLen bounds a decoded path: an inclusion path in a 2^64-leaf
	// tree has at most 63 entries and a consistency proof at most 2*63+1;
	// anything longer is malformed by construction.
	MaxProofLen    = 128
	proofHeaderLen = 4 + 1 + 1 + 8 + 8 + 2
)

// Marshal encodes the proof.
func (p *Proof) Marshal() ([]byte, error) {
	if p.Kind != ProofInclusion && p.Kind != ProofConsistency {
		return nil, fmt.Errorf("transcript: marshal proof: bad kind %d", p.Kind)
	}
	if len(p.Path) > MaxProofLen {
		return nil, fmt.Errorf("transcript: marshal proof: path too long (%d)", len(p.Path))
	}
	out := make([]byte, proofHeaderLen, proofHeaderLen+32*len(p.Path))
	copy(out, proofMagic)
	out[4] = proofVersion
	out[5] = byte(p.Kind)
	binary.LittleEndian.PutUint64(out[6:], p.First)
	binary.LittleEndian.PutUint64(out[14:], p.Second)
	binary.LittleEndian.PutUint16(out[22:], uint16(len(p.Path)))
	for _, h := range p.Path {
		out = append(out, h[:]...)
	}
	return out, nil
}

// UnmarshalProof decodes one proof, rejecting trailing bytes, unknown
// versions and over-long paths before any path allocation.
func UnmarshalProof(b []byte) (*Proof, error) {
	if len(b) < proofHeaderLen {
		return nil, fmt.Errorf("transcript: proof truncated (%d bytes)", len(b))
	}
	if string(b[:4]) != proofMagic {
		return nil, fmt.Errorf("transcript: bad proof magic")
	}
	if b[4] != proofVersion {
		return nil, fmt.Errorf("transcript: unsupported proof version %d", b[4])
	}
	kind := ProofKind(b[5])
	if kind != ProofInclusion && kind != ProofConsistency {
		return nil, fmt.Errorf("transcript: bad proof kind %d", b[5])
	}
	first := binary.LittleEndian.Uint64(b[6:])
	second := binary.LittleEndian.Uint64(b[14:])
	n := int(binary.LittleEndian.Uint16(b[22:]))
	if n > MaxProofLen {
		return nil, fmt.Errorf("transcript: proof path too long (%d)", n)
	}
	if len(b) != proofHeaderLen+32*n {
		return nil, fmt.Errorf("transcript: proof length %d does not match path count %d", len(b), n)
	}
	switch kind {
	case ProofInclusion:
		if first >= second {
			return nil, fmt.Errorf("transcript: inclusion index %d outside tree of size %d", first, second)
		}
	case ProofConsistency:
		if first > second {
			return nil, fmt.Errorf("transcript: consistency sizes inverted (%d > %d)", first, second)
		}
	}
	p := &Proof{Kind: kind, First: first, Second: second}
	if n > 0 {
		p.Path = make([]Hash, n)
		for i := range p.Path {
			copy(p.Path[i][:], b[proofHeaderLen+32*i:])
		}
	}
	return p, nil
}
