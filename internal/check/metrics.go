package check

import (
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Cross-validation series. The divergence-score histogram records the
// magnitude of disagreements (max |a-b| per shared tensor, in nanounits so
// the log2 buckets resolve values well below 1.0) — it runs only on the rare
// disagreeing pairs, never inside the perf-pinned Evaluate hot path.
var (
	mVotes        = telemetry.Default.Counter(telemetry.MetricCheckVotes)
	mPairDisagree = telemetry.Default.Counter(telemetry.MetricCheckPairDisagree)
	mDivergence   = telemetry.Default.Histogram(telemetry.MetricCheckDivergenceScore)
)

// divergenceScale converts a max-abs-diff score to integer nanounits for the
// histogram: a 1e-3 divergence lands near bucket 20, a 1.0 divergence near
// bucket 30.
const divergenceScale = 1e9

// observeDivergence records how far apart a disagreeing result pair is. It
// only runs after a pair has already failed Consistent, so its extra Compare
// passes cost nothing on agreeing (hot-path) votes.
func observeDivergence(a, b map[string]*tensor.Tensor) {
	crit := Criterion{Metric: MaxAbsDiff}
	for name, at := range a {
		bt, ok := b[name]
		if !ok {
			continue
		}
		score, _, err := Compare(at, bt, crit)
		if err != nil {
			continue
		}
		mDivergence.Observe(int64(score * divergenceScale))
	}
}
