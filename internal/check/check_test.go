package check

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func ts(v ...float32) *tensor.Tensor {
	return tensor.MustFromSlice(v, len(v))
}

func TestCosine(t *testing.T) {
	a := ts(1, 0)
	b := ts(0, 1)
	score, ok, err := Compare(a, b, Criterion{Metric: Cosine, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 || ok {
		t.Fatalf("orthogonal vectors: score=%v ok=%v", score, ok)
	}
	score, ok, _ = Compare(a, a, Criterion{Metric: Cosine, Threshold: 0.999})
	if math.Abs(score-1) > 1e-9 || !ok {
		t.Fatalf("identical vectors: score=%v ok=%v", score, ok)
	}
	// Zero vectors are defined as perfectly similar to each other.
	if _, ok, _ := Compare(ts(0, 0), ts(0, 0), Criterion{Metric: Cosine, Threshold: 1}); !ok {
		t.Fatal("zero-zero cosine should pass")
	}
}

func TestMSE(t *testing.T) {
	score, ok, err := Compare(ts(1, 3), ts(2, 1), Criterion{Metric: MSE, Threshold: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if score != 2.5 || !ok { // ((1)^2 + (2)^2)/2 = 2.5
		t.Fatalf("mse=%v ok=%v", score, ok)
	}
	_, ok, _ = Compare(ts(1, 3), ts(2, 1), Criterion{Metric: MSE, Threshold: 2.4})
	if ok {
		t.Fatal("should exceed threshold")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	score, ok, _ := Compare(ts(1, 5), ts(1, 2), Criterion{Metric: MaxAbsDiff, Threshold: 3})
	if score != 3 || !ok {
		t.Fatalf("maxabs=%v ok=%v", score, ok)
	}
	if _, ok, _ := Compare(ts(float32(math.NaN())), ts(0), Criterion{Metric: MaxAbsDiff, Threshold: 100}); ok {
		t.Fatal("NaN must fail")
	}
}

func TestAllClose(t *testing.T) {
	c := Criterion{Metric: AllClose, RTol: 0.1, ATol: 0.01}
	if _, ok, _ := Compare(ts(1.05), ts(1.0), c); !ok {
		t.Fatal("within rtol must pass")
	}
	if _, ok, _ := Compare(ts(1.2), ts(1.0), c); ok {
		t.Fatal("outside rtol must fail")
	}
	if _, ok, _ := Compare(ts(0.005), ts(0), c); !ok {
		t.Fatal("within atol must pass")
	}
}

func TestCompareShapeMismatch(t *testing.T) {
	_, _, err := Compare(tensor.New(2), tensor.New(3), Criterion{Metric: MSE, Threshold: 1})
	if err == nil {
		t.Fatal("expected shape error")
	}
}

func TestConsistentPolicyConjunction(t *testing.T) {
	a := map[string]*tensor.Tensor{"y": ts(1, 2, 3)}
	b := map[string]*tensor.Tensor{"y": ts(1, 2, 3.0001)}
	tight := Policy{Criteria: []Criterion{
		{Metric: Cosine, Threshold: 0.99},
		{Metric: MaxAbsDiff, Threshold: 1e-8},
	}}
	ok, err := Consistent(a, b, tight)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("conjunction: failing MaxAbsDiff must fail the policy")
	}
	loose := Policy{Criteria: []Criterion{{Metric: MaxAbsDiff, Threshold: 1e-3}}}
	if ok, _ := Consistent(a, b, loose); !ok {
		t.Fatal("loose policy should pass")
	}
}

func TestConsistentNameAndShapeMismatch(t *testing.T) {
	a := map[string]*tensor.Tensor{"y": ts(1)}
	if ok, _ := Consistent(a, map[string]*tensor.Tensor{"z": ts(1)}, Policy{}); ok {
		t.Fatal("different tensor names must be inconsistent")
	}
	if ok, _ := Consistent(a, map[string]*tensor.Tensor{"y": tensor.New(2)}, Policy{}); ok {
		t.Fatal("different shapes must be inconsistent")
	}
	if ok, _ := Consistent(a, map[string]*tensor.Tensor{}, Policy{}); ok {
		t.Fatal("different cardinality must be inconsistent")
	}
}

func res(v float32) map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{"y": ts(v, v, v)}
}

func TestVoteUnanimousAllAgree(t *testing.T) {
	v, err := Vote([]map[string]*tensor.Tensor{res(1), res(1), res(1)}, DefaultPolicy(), Unanimous)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.Chosen < 0 || len(v.Agreeing) != 3 || len(v.Dissenters) != 0 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestVoteUnanimousOneDissenter(t *testing.T) {
	v, err := Vote([]map[string]*tensor.Tensor{res(1), res(1), res(9)}, DefaultPolicy(), Unanimous)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("unanimous vote must fail with a dissenter")
	}
	if len(v.Dissenters) != 1 || v.Dissenters[0] != 2 {
		t.Fatalf("dissenters = %v, want [2]", v.Dissenters)
	}
	if v.Chosen != 0 {
		t.Fatalf("chosen = %d, want the majority cluster's first member", v.Chosen)
	}
}

func TestVoteMajority(t *testing.T) {
	v, err := Vote([]map[string]*tensor.Tensor{res(1), res(9), res(1)}, DefaultPolicy(), Majority)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.Chosen != 0 {
		t.Fatalf("verdict = %+v", v)
	}
	// Even split (2 clusters of 1): no strict majority.
	v, _ = Vote([]map[string]*tensor.Tensor{res(1), res(9)}, DefaultPolicy(), Majority)
	if v.OK {
		t.Fatal("2-way split must not reach majority")
	}
}

func TestVoteCrashedVariantIsDissent(t *testing.T) {
	v, err := Vote([]map[string]*tensor.Tensor{res(1), nil, res(1)}, DefaultPolicy(), Majority)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatal("majority of live variants should pass")
	}
	if len(v.Dissenters) != 1 || v.Dissenters[0] != 1 {
		t.Fatalf("dissenters = %v", v.Dissenters)
	}
	// All crashed: no quorum possible.
	v, _ = Vote([]map[string]*tensor.Tensor{nil, nil}, DefaultPolicy(), Majority)
	if v.OK || v.Chosen != -1 {
		t.Fatalf("all-crashed verdict = %+v", v)
	}
}

func TestVoteMajorityPicksLargestCluster(t *testing.T) {
	// The corrupt result arrives first; clustering must still find the
	// 2-member clean cluster.
	v, err := Vote([]map[string]*tensor.Tensor{res(9), res(1), res(1)}, DefaultPolicy(), Majority)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK || v.Chosen != 1 {
		t.Fatalf("verdict = %+v, want chosen=1", v)
	}
}

func TestVoteEmpty(t *testing.T) {
	if _, err := Vote(nil, DefaultPolicy(), Unanimous); err == nil {
		t.Fatal("expected error on empty vote")
	}
}

// TestQuickVoteMajorityCorrupt property-tests that with k variants of which
// a strict minority is corrupted, majority voting always recovers a clean
// representative.
func TestQuickVoteMajorityCorrupt(t *testing.T) {
	f := func(seed uint64, kk, cc uint8) bool {
		k := int(kk%5) + 3 // 3..7 variants
		corrupt := int(cc) % ((k - 1) / 2)
		rng := rand.New(rand.NewPCG(seed, 21))
		results := make([]map[string]*tensor.Tensor, k)
		cleanVal := float32(rng.NormFloat64())
		for i := range results {
			results[i] = res(cleanVal)
		}
		for i := 0; i < corrupt; i++ {
			results[rng.IntN(k)] = res(cleanVal + 100)
		}
		v, err := Vote(results, DefaultPolicy(), Majority)
		if err != nil || !v.OK || v.Chosen < 0 {
			return false
		}
		return results[v.Chosen]["y"].At(0) == cleanVal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
