package check

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"slices"

	"repro/internal/tensor"
)

// Digest is a canonical 32-byte fingerprint of a named tensor set.
type Digest [32]byte

// DigestOf computes the canonical digest of a checkpoint: SHA-256 over the
// tensor names in sorted order, each followed by its shape and raw
// little-endian float bits. Two tensor sets digest equal iff they are
// bitwise-identical under the same names — the cross-node comparison the
// distributed tier votes on. The PR 1 kernels are bitwise-deterministic
// across BLAS backends and worker parallelism, which is what makes equality
// of digests (rather than the tolerance-band Consistent check) a sound
// cross-replica verdict; replicas whose runtimes are not bitwise-reproducing
// must fall back to full-tensor shipping.
func DigestOf(ts map[string]*tensor.Tensor) Digest {
	names := make([]string, 0, len(ts))
	for name := range ts {
		names = append(names, name)
	}
	slices.Sort(names)
	h := sha256.New()
	var scratch [8]byte
	for _, name := range names {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(name)))
		h.Write(scratch[:])
		h.Write([]byte(name))
		t := ts[name]
		binary.LittleEndian.PutUint64(scratch[:], uint64(t.Dims()))
		h.Write(scratch[:])
		for i := 0; i < t.Dims(); i++ {
			binary.LittleEndian.PutUint64(scratch[:], uint64(t.Dim(i)))
			h.Write(scratch[:])
		}
		data := t.Data()
		// Hash the float bits in chunks through the scratch-free fast path:
		// reinterpret each float32 as its IEEE-754 bit pattern so the digest
		// is exactly "bitwise equality", with no formatting ambiguity.
		var buf [512]byte
		for len(data) > 0 {
			n := len(data)
			if n > len(buf)/4 {
				n = len(buf) / 4
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(data[i]))
			}
			h.Write(buf[:4*n])
			data = data[n:]
		}
	}
	var d Digest
	h.Sum(d[:0])
	return d
}
