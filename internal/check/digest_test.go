package check

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDigestDeterministicAndSensitive(t *testing.T) {
	mk := func() map[string]*tensor.Tensor {
		a := tensor.New(2, 3)
		b := tensor.New(4)
		for i, v := range []float32{1, 2, 3, 4, 5, 6} {
			a.Data()[i] = v
		}
		for i := range b.Data() {
			b.Data()[i] = float32(i) * 0.5
		}
		return map[string]*tensor.Tensor{"alpha": a, "beta": b}
	}
	d1, d2 := DigestOf(mk()), DigestOf(mk())
	if d1 != d2 {
		t.Fatal("identical tensor sets must digest equal")
	}

	// Single-ULP data change flips the digest.
	m := mk()
	m["alpha"].Data()[3] = math.Nextafter32(m["alpha"].Data()[3], 100)
	if DigestOf(m) == d1 {
		t.Fatal("data perturbation not reflected in digest")
	}

	// Same data under a different name is a different checkpoint.
	m = mk()
	m["gamma"] = m["beta"]
	delete(m, "beta")
	if DigestOf(m) == d1 {
		t.Fatal("renamed tensor not reflected in digest")
	}

	// Same flat data with a different shape is a different checkpoint.
	m = mk()
	r := tensor.New(3, 2)
	copy(r.Data(), m["alpha"].Data())
	m["alpha"] = r
	if DigestOf(m) == d1 {
		t.Fatal("reshape not reflected in digest")
	}

	// Zero-length name/shape boundary cases must not collide trivially.
	empty := DigestOf(map[string]*tensor.Tensor{})
	if empty == d1 {
		t.Fatal("empty set collided")
	}
}

func BenchmarkDigestOf64KiB(b *testing.B) {
	x := tensor.New(128, 128)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	m := map[string]*tensor.Tensor{"y": x}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DigestOf(m)
	}
}
