// Package check implements MVTEE's checkpoint consistency evaluation (§4.3,
// §5.2): criteria-based comparison of variant outputs under configurable
// metrics (cosine similarity, mean squared error, maximum absolute
// difference, allclose) with per-configuration thresholds to distinguish
// attacks from benign divergences, and the cross-process voting strategies
// (unanimous consent by default, majority as the async-mode quorum).
package check

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Metric identifies a consistency measure between two tensors.
type Metric int

// Supported metrics, matching §5.2's implementation list.
const (
	Cosine     Metric = iota + 1 // cosine similarity; pass if >= Threshold
	MSE                          // mean squared error; pass if <= Threshold
	MaxAbsDiff                   // max |a-b|; pass if <= Threshold
	AllClose                     // np.testing.assert_allclose analogue: |a-b| <= ATol + RTol*|b| elementwise
)

func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case MSE:
		return "mse"
	case MaxAbsDiff:
		return "maxabs"
	case AllClose:
		return "allclose"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Criterion is one thresholded metric.
type Criterion struct {
	Metric    Metric
	Threshold float64 // Cosine: min similarity; MSE/MaxAbsDiff: max error
	RTol      float64 // AllClose relative tolerance
	ATol      float64 // AllClose absolute tolerance
}

// DefaultPolicy returns the policy used when a configuration does not
// specify one: allclose with tolerances wide enough for benign cross-variant
// float divergence, plus a cosine floor.
func DefaultPolicy() Policy {
	return Policy{Criteria: []Criterion{
		{Metric: AllClose, RTol: 1e-3, ATol: 1e-4},
		{Metric: Cosine, Threshold: 0.9999},
	}}
}

// Policy is a conjunction of criteria; a pair of outputs is consistent only
// if every criterion passes on every checkpoint tensor.
type Policy struct {
	Criteria []Criterion
}

// ErrShapeMismatch reports incomparable tensors.
var ErrShapeMismatch = errors.New("check: tensor shapes differ")

// Compare evaluates one criterion on a tensor pair, returning the metric
// score and whether the criterion passes.
func Compare(a, b *tensor.Tensor, c Criterion) (float64, bool, error) {
	if !a.SameShape(b) {
		return 0, false, fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, a.Shape(), b.Shape())
	}
	ad, bd := a.Data(), b.Data()
	switch c.Metric {
	case Cosine:
		var dot, na, nb float64
		for i := range ad {
			x, y := float64(ad[i]), float64(bd[i])
			dot += x * y
			na += x * x
			nb += y * y
		}
		if na == 0 && nb == 0 {
			return 1, 1 >= c.Threshold, nil
		}
		if na == 0 || nb == 0 {
			return 0, 0 >= c.Threshold, nil
		}
		sim := dot / (math.Sqrt(na) * math.Sqrt(nb))
		return sim, sim >= c.Threshold && !math.IsNaN(sim), nil
	case MSE:
		var s float64
		for i := range ad {
			d := float64(ad[i]) - float64(bd[i])
			s += d * d
		}
		mse := s / float64(len(ad))
		return mse, mse <= c.Threshold && !math.IsNaN(mse), nil
	case MaxAbsDiff:
		var m float64
		for i := range ad {
			d := math.Abs(float64(ad[i]) - float64(bd[i]))
			if d > m || math.IsNaN(d) {
				m = d
			}
			if math.IsNaN(d) {
				return math.NaN(), false, nil
			}
		}
		return m, m <= c.Threshold, nil
	case AllClose:
		var worst float64
		for i := range ad {
			d := math.Abs(float64(ad[i]) - float64(bd[i]))
			lim := c.ATol + c.RTol*math.Abs(float64(bd[i]))
			if math.IsNaN(d) {
				return math.NaN(), false, nil
			}
			if d > lim {
				if ex := d - lim; ex > worst {
					worst = ex
				}
			}
		}
		return worst, worst == 0, nil
	default:
		return 0, false, fmt.Errorf("check: unknown metric %d", int(c.Metric))
	}
}

// Consistent reports whether two named-tensor result sets agree under the
// policy: same tensor names, and every criterion passes on every tensor.
func Consistent(a, b map[string]*tensor.Tensor, p Policy) (bool, error) {
	if len(p.Criteria) == 0 {
		p = DefaultPolicy()
	}
	if len(a) != len(b) {
		return false, nil
	}
	for name, at := range a {
		bt, ok := b[name]
		if !ok {
			return false, nil
		}
		for _, c := range p.Criteria {
			_, ok, err := Compare(at, bt, c)
			if err != nil {
				if errors.Is(err, ErrShapeMismatch) {
					return false, nil
				}
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

// Strategy is the voting rule applied at checkpoints.
type Strategy int

// Voting strategies (§4.3: unanimous consent by default; majority is the
// quorum rule of async mode).
const (
	Unanimous Strategy = iota + 1
	Majority
)

func (s Strategy) String() string {
	switch s {
	case Unanimous:
		return "unanimous"
	case Majority:
		return "majority"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Verdict is the outcome of a checkpoint vote.
type Verdict struct {
	// OK reports whether the vote met the strategy's agreement level.
	OK bool
	// Chosen is the index of the representative output to replicate
	// downstream (-1 when no quorum exists).
	Chosen int
	// Agreeing lists indices in the winning cluster.
	Agreeing []int
	// Dissenters lists indices outside the winning cluster (crashed
	// variants — nil results — always dissent).
	Dissenters []int
}

// Vote clusters variant outputs by pairwise consistency and applies the
// strategy. results entries may be nil (crashed/failed variant).
func Vote(results []map[string]*tensor.Tensor, p Policy, s Strategy) (Verdict, error) {
	n := len(results)
	if n == 0 {
		return Verdict{OK: false, Chosen: -1}, errors.New("check: empty vote")
	}
	// Pairwise agreement.
	agree := make([][]bool, n)
	for i := range agree {
		agree[i] = make([]bool, n)
		agree[i][i] = results[i] != nil
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if results[i] == nil || results[j] == nil {
				continue
			}
			ok, err := Consistent(results[i], results[j], p)
			if err != nil {
				return Verdict{OK: false, Chosen: -1}, err
			}
			agree[i][j], agree[j][i] = ok, ok
		}
	}
	// Greedy clustering around each pivot; keep the largest cluster.
	best := []int{}
	for pivot := 0; pivot < n; pivot++ {
		if results[pivot] == nil {
			continue
		}
		var cl []int
		for j := 0; j < n; j++ {
			if agree[pivot][j] {
				cl = append(cl, j)
			}
		}
		if len(cl) > len(best) {
			best = cl
		}
	}
	v := Verdict{Chosen: -1}
	if len(best) > 0 {
		v.Chosen = best[0]
		v.Agreeing = best
	}
	inBest := make(map[int]bool, len(best))
	for _, i := range best {
		inBest[i] = true
	}
	for i := 0; i < n; i++ {
		if !inBest[i] {
			v.Dissenters = append(v.Dissenters, i)
		}
	}
	sort.Ints(v.Dissenters)
	switch s {
	case Unanimous:
		v.OK = len(best) == n
	case Majority:
		v.OK = len(best)*2 > n
	default:
		return v, fmt.Errorf("check: unknown strategy %d", int(s))
	}
	return v, nil
}
