// Package check implements MVTEE's checkpoint consistency evaluation (§4.3,
// §5.2): criteria-based comparison of variant outputs under configurable
// metrics (cosine similarity, mean squared error, maximum absolute
// difference, allclose) with per-configuration thresholds to distinguish
// attacks from benign divergences, and the cross-process voting strategies
// (unanimous consent by default, majority as the async-mode quorum).
package check

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Metric identifies a consistency measure between two tensors.
type Metric int

// Supported metrics, matching §5.2's implementation list.
const (
	Cosine     Metric = iota + 1 // cosine similarity; pass if >= Threshold
	MSE                          // mean squared error; pass if <= Threshold
	MaxAbsDiff                   // max |a-b|; pass if <= Threshold
	AllClose                     // np.testing.assert_allclose analogue: |a-b| <= ATol + RTol*|b| elementwise
)

func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case MSE:
		return "mse"
	case MaxAbsDiff:
		return "maxabs"
	case AllClose:
		return "allclose"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Criterion is one thresholded metric.
type Criterion struct {
	Metric    Metric
	Threshold float64 // Cosine: min similarity; MSE/MaxAbsDiff: max error
	RTol      float64 // AllClose relative tolerance
	ATol      float64 // AllClose absolute tolerance
}

// defaultCriteria backs DefaultPolicy; Evaluate and Consistent fall back to
// it directly when a policy is empty, so the default path allocates nothing.
var defaultCriteria = []Criterion{
	{Metric: AllClose, RTol: 1e-3, ATol: 1e-4},
	{Metric: Cosine, Threshold: 0.9999},
}

// DefaultPolicy returns the policy used when a configuration does not
// specify one: allclose with tolerances wide enough for benign cross-variant
// float divergence, plus a cosine floor.
func DefaultPolicy() Policy {
	return Policy{Criteria: append([]Criterion(nil), defaultCriteria...)}
}

// Policy is a conjunction of criteria; a pair of outputs is consistent only
// if every criterion passes on every checkpoint tensor.
type Policy struct {
	Criteria []Criterion
}

// ErrShapeMismatch reports incomparable tensors.
var ErrShapeMismatch = errors.New("check: tensor shapes differ")

// Compare evaluates one criterion on a tensor pair, returning the metric
// score and whether the criterion passes.
func Compare(a, b *tensor.Tensor, c Criterion) (float64, bool, error) {
	if !a.SameShape(b) {
		return 0, false, fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, a.Shape(), b.Shape())
	}
	ad, bd := a.Data(), b.Data()
	switch c.Metric {
	case Cosine:
		var dot, na, nb float64
		for i := range ad {
			x, y := float64(ad[i]), float64(bd[i])
			dot += x * y
			na += x * x
			nb += y * y
		}
		if na == 0 && nb == 0 {
			return 1, 1 >= c.Threshold, nil
		}
		if na == 0 || nb == 0 {
			return 0, 0 >= c.Threshold, nil
		}
		sim := dot / (math.Sqrt(na) * math.Sqrt(nb))
		return sim, sim >= c.Threshold && !math.IsNaN(sim), nil
	case MSE:
		var s float64
		for i := range ad {
			d := float64(ad[i]) - float64(bd[i])
			s += d * d
		}
		mse := s / float64(len(ad))
		return mse, mse <= c.Threshold && !math.IsNaN(mse), nil
	case MaxAbsDiff:
		var m float64
		for i := range ad {
			d := math.Abs(float64(ad[i]) - float64(bd[i]))
			if d > m || math.IsNaN(d) {
				m = d
			}
			if math.IsNaN(d) {
				return math.NaN(), false, nil
			}
		}
		return m, m <= c.Threshold, nil
	case AllClose:
		var worst float64
		for i := range ad {
			d := math.Abs(float64(ad[i]) - float64(bd[i]))
			lim := c.ATol + c.RTol*math.Abs(float64(bd[i]))
			if math.IsNaN(d) {
				return math.NaN(), false, nil
			}
			if d > lim {
				if ex := d - lim; ex > worst {
					worst = ex
				}
			}
		}
		return worst, worst == 0, nil
	default:
		return 0, false, fmt.Errorf("check: unknown metric %d", int(c.Metric))
	}
}

// maxFusedAllClose bounds the allclose tolerance pairs the fused sweep tracks
// in stack storage; policies with more fall back to per-criterion Compare.
const maxFusedAllClose = 4

// Evaluate reports whether the tensor pair satisfies every criterion of the
// policy (the default policy when p is empty). Unlike running Compare per
// criterion, Evaluate makes a single pass over the data, accumulating the
// cosine dot/norms, the squared-error sum, the running max-abs difference and
// the allclose violation state together, and allocates nothing — this is the
// monitor's checkpoint hot path.
//
// Semantics match Compare criterion-by-criterion, with one deliberate
// tightening: a non-finite element difference (a NaN in either tensor, or
// same-signed infinities) makes the pair inconsistent under *every*
// criterion, so the sweep stops early. Compare's cosine metric could pass
// such a pair only with a degenerate threshold <= 0; for divergence
// detection a NaN output must never count as agreement.
//
// Shape mismatch is inconsistency, not an error (as in Consistent).
func Evaluate(a, b *tensor.Tensor, p Policy) (bool, error) {
	crits := p.Criteria
	if len(crits) == 0 {
		crits = defaultCriteria
	}
	if !a.SameShape(b) {
		return false, nil
	}

	// Classify the criteria, folding same-metric duplicates into their
	// strictest bound so the sweep evaluates each accumulator once.
	var needCos, needMSE, needMax bool
	var cosTh, mseTh, maxTh float64
	var acR, acA [maxFusedAllClose]float64
	nAC := 0
	for _, c := range crits {
		switch c.Metric {
		case Cosine:
			if !needCos || c.Threshold > cosTh {
				cosTh = c.Threshold
			}
			needCos = true
		case MSE:
			if !needMSE || c.Threshold < mseTh {
				mseTh = c.Threshold
			}
			needMSE = true
		case MaxAbsDiff:
			if !needMax || c.Threshold < maxTh {
				maxTh = c.Threshold
			}
			needMax = true
		case AllClose:
			if nAC == maxFusedAllClose {
				// Degenerate policy; keep correctness via the slow path.
				return evaluateSlow(a, b, crits)
			}
			acR[nAC], acA[nAC] = c.RTol, c.ATol
			nAC++
		default:
			return false, fmt.Errorf("check: unknown metric %d", int(c.Metric))
		}
	}

	ad, bd := a.Data(), b.Data()
	bd = bd[:len(ad)] // SameShape holds; let the compiler drop bounds checks
	// Fast path for the shape of the default policy — one allclose tolerance
	// plus a cosine floor — with a branch-free inner loop.
	if nAC == 1 && needCos && !needMSE && !needMax {
		rtol, atol := acR[0], acA[0]
		// Two independent accumulator sets break the loop-carried FP-add
		// latency chains; without them the three serial sums cap the sweep
		// well below the load/multiply throughput of the core.
		var dot0, na0, nb0, dot1, na1, nb1 float64
		i := 0
		for ; i+1 < len(ad); i += 2 {
			x0, y0 := float64(ad[i]), float64(bd[i])
			x1, y1 := float64(ad[i+1]), float64(bd[i+1])
			d0 := math.Abs(x0 - y0)
			d1 := math.Abs(x1 - y1)
			// Negated form so a NaN difference (all comparisons false)
			// also fails here.
			if !(d0 <= atol+rtol*math.Abs(y0)) || !(d1 <= atol+rtol*math.Abs(y1)) {
				return false, nil
			}
			// math.FMA compiles to one fused multiply-add instruction on
			// current amd64/arm64, halving the accumulator µops. The cosine
			// sums are order-sensitive approximations already (two lanes);
			// the fused rounding changes nothing observable at policy
			// thresholds. The allclose limit above deliberately stays
			// mul-then-add so its rounding matches Compare exactly.
			dot0 = math.FMA(x0, y0, dot0)
			na0 = math.FMA(x0, x0, na0)
			nb0 = math.FMA(y0, y0, nb0)
			dot1 = math.FMA(x1, y1, dot1)
			na1 = math.FMA(x1, x1, na1)
			nb1 = math.FMA(y1, y1, nb1)
		}
		for ; i < len(ad); i++ {
			x, y := float64(ad[i]), float64(bd[i])
			d := math.Abs(x - y)
			if !(d <= atol+rtol*math.Abs(y)) {
				return false, nil
			}
			dot0 += x * y
			na0 += x * x
			nb0 += y * y
		}
		return cosinePasses(dot0+dot1, na0+na1, nb0+nb1, cosTh), nil
	}

	var dot, na, nb, sumSq, maxd float64
	for i := range ad {
		x, y := float64(ad[i]), float64(bd[i])
		diff := x - y
		d := math.Abs(diff)
		if math.IsNaN(d) {
			return false, nil
		}
		if needCos {
			dot += x * y
			na += x * x
			nb += y * y
		}
		if needMSE {
			sumSq += diff * diff
		}
		if d > maxd {
			maxd = d
		}
		for t := 0; t < nAC; t++ {
			if d > acA[t]+acR[t]*math.Abs(y) {
				return false, nil
			}
		}
	}
	if needCos && !cosinePasses(dot, na, nb, cosTh) {
		return false, nil
	}
	if needMSE {
		mse := sumSq / float64(len(ad))
		if !(mse <= mseTh) || math.IsNaN(mse) {
			return false, nil
		}
	}
	if needMax && !(maxd <= maxTh) {
		return false, nil
	}
	return true, nil
}

// cosinePasses applies Compare's cosine decision to fused accumulators.
func cosinePasses(dot, na, nb, threshold float64) bool {
	if na == 0 && nb == 0 {
		return 1 >= threshold
	}
	if na == 0 || nb == 0 {
		return 0 >= threshold
	}
	sim := dot / (math.Sqrt(na) * math.Sqrt(nb))
	return sim >= threshold && !math.IsNaN(sim)
}

// evaluateSlow is the criterion-by-criterion fallback for policies too exotic
// for the fused sweep.
func evaluateSlow(a, b *tensor.Tensor, crits []Criterion) (bool, error) {
	for _, c := range crits {
		_, ok, err := Compare(a, b, c)
		if err != nil {
			if errors.Is(err, ErrShapeMismatch) {
				return false, nil
			}
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Consistent reports whether two named-tensor result sets agree under the
// policy: same tensor names, and every criterion passes on every tensor. Each
// pair is checked with the single-pass Evaluate.
func Consistent(a, b map[string]*tensor.Tensor, p Policy) (bool, error) {
	if len(a) != len(b) {
		return false, nil
	}
	for name, at := range a {
		bt, ok := b[name]
		if !ok {
			return false, nil
		}
		pass, err := Evaluate(at, bt, p)
		if err != nil {
			return false, err
		}
		if !pass {
			return false, nil
		}
	}
	return true, nil
}

// Strategy is the voting rule applied at checkpoints.
type Strategy int

// Voting strategies (§4.3: unanimous consent by default; majority is the
// quorum rule of async mode).
const (
	Unanimous Strategy = iota + 1
	Majority
)

func (s Strategy) String() string {
	switch s {
	case Unanimous:
		return "unanimous"
	case Majority:
		return "majority"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Verdict is the outcome of a checkpoint vote.
type Verdict struct {
	// OK reports whether the vote met the strategy's agreement level.
	OK bool
	// Chosen is the index of the representative output to replicate
	// downstream (-1 when no quorum exists).
	Chosen int
	// Agreeing lists indices in the winning cluster.
	Agreeing []int
	// Dissenters lists indices outside the winning cluster (crashed
	// variants — nil results — always dissent).
	Dissenters []int
}

// Vote clusters variant outputs by pairwise consistency and applies the
// strategy. results entries may be nil (crashed/failed variant).
func Vote(results []map[string]*tensor.Tensor, p Policy, s Strategy) (Verdict, error) {
	n := len(results)
	if n == 0 {
		return Verdict{OK: false, Chosen: -1}, errors.New("check: empty vote")
	}
	// Pairwise agreement.
	agree := make([][]bool, n)
	for i := range agree {
		agree[i] = make([]bool, n)
		agree[i][i] = results[i] != nil
	}
	rec := telemetry.Enabled()
	if rec {
		mVotes.Inc()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if results[i] == nil || results[j] == nil {
				continue
			}
			ok, err := Consistent(results[i], results[j], p)
			if err != nil {
				return Verdict{OK: false, Chosen: -1}, err
			}
			agree[i][j], agree[j][i] = ok, ok
			if rec && !ok {
				mPairDisagree.Inc()
				observeDivergence(results[i], results[j])
			}
		}
	}
	// Greedy clustering around each pivot; keep the largest cluster.
	best := []int{}
	for pivot := 0; pivot < n; pivot++ {
		if results[pivot] == nil {
			continue
		}
		var cl []int
		for j := 0; j < n; j++ {
			if agree[pivot][j] {
				cl = append(cl, j)
			}
		}
		if len(cl) > len(best) {
			best = cl
		}
	}
	v := Verdict{Chosen: -1}
	if len(best) > 0 {
		v.Chosen = best[0]
		v.Agreeing = best
	}
	inBest := make(map[int]bool, len(best))
	for _, i := range best {
		inBest[i] = true
	}
	for i := 0; i < n; i++ {
		if !inBest[i] {
			v.Dissenters = append(v.Dissenters, i)
		}
	}
	sort.Ints(v.Dissenters)
	switch s {
	case Unanimous:
		v.OK = len(best) == n
	case Majority:
		v.OK = len(best)*2 > n
	default:
		return v, fmt.Errorf("check: unknown strategy %d", int(s))
	}
	return v, nil
}
