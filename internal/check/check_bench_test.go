package check

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// BenchmarkConsistency measures per-metric checkpoint evaluation cost — the
// "verification computation" §6.2 notes completes quickly relative to
// transmission and crypto.
func BenchmarkConsistency(b *testing.B) {
	x := tensor.New(1, 64, 16, 16)
	for i := range x.Data() {
		x.Data()[i] = float32(i%31) / 31
	}
	a := map[string]*tensor.Tensor{"y": x}
	criteria := map[string]Criterion{
		"cosine":   {Metric: Cosine, Threshold: 0.999},
		"mse":      {Metric: MSE, Threshold: 1e-6},
		"maxabs":   {Metric: MaxAbsDiff, Threshold: 1e-4},
		"allclose": {Metric: AllClose, RTol: 1e-3, ATol: 1e-4},
	}
	for name, c := range criteria {
		b.Run(name, func(b *testing.B) {
			pol := Policy{Criteria: []Criterion{c}}
			for i := 0; i < b.N; i++ {
				if _, err := Consistent(a, a, pol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluateDefault measures the fused single-pass checkpoint
// evaluation on the default two-criterion policy (allclose + cosine) — the
// steady-state monitor cost per checkpoint tensor pair. Compare against the
// sum of the allclose and cosine cases of BenchmarkConsistency, which is what
// the same policy cost before fusion.
func BenchmarkEvaluateDefault(b *testing.B) {
	x := tensor.New(1, 64, 16, 16)
	for i := range x.Data() {
		x.Data()[i] = float32(i%31) / 31
	}
	pol := DefaultPolicy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := Evaluate(x, x, pol)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("self-comparison must pass")
		}
	}
}

// BenchmarkVote measures the full clustering vote across panel sizes.
func BenchmarkVote(b *testing.B) {
	x := tensor.New(1, 64, 16, 16)
	res := map[string]*tensor.Tensor{"y": x}
	for _, k := range []int{3, 5} {
		results := make([]map[string]*tensor.Tensor, k)
		for i := range results {
			results[i] = res
		}
		b.Run(fmt.Sprintf("%dvar", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Vote(results, DefaultPolicy(), Unanimous); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
