package check

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/tensor"
)

// randPair returns two tensors that differ by benign float-rounding noise.
func randPair(seed uint64, n int, jitter float64) (*tensor.Tensor, *tensor.Tensor) {
	rng := rand.New(rand.NewPCG(seed, 17))
	a := tensor.New(n)
	b := tensor.New(n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		a.Data()[i] = float32(v)
		b.Data()[i] = float32(v * (1 + jitter*rng.NormFloat64()))
	}
	return a, b
}

// TestEvaluateMatchesCompare cross-checks the fused single-pass Evaluate
// against per-criterion Compare over every metric, on agreeing and
// disagreeing pairs.
func TestEvaluateMatchesCompare(t *testing.T) {
	policies := []Policy{
		DefaultPolicy(),
		{Criteria: []Criterion{{Metric: Cosine, Threshold: 0.999}}},
		{Criteria: []Criterion{{Metric: MSE, Threshold: 1e-6}}},
		{Criteria: []Criterion{{Metric: MaxAbsDiff, Threshold: 1e-3}}},
		{Criteria: []Criterion{{Metric: AllClose, RTol: 1e-3, ATol: 1e-4}}},
		{Criteria: []Criterion{
			{Metric: MSE, Threshold: 1e-5},
			{Metric: MaxAbsDiff, Threshold: 1e-2},
			{Metric: Cosine, Threshold: 0.99},
			{Metric: AllClose, RTol: 1e-2, ATol: 1e-3},
		}},
		// More allclose criteria than the fused sweep tracks: slow path.
		{Criteria: []Criterion{
			{Metric: AllClose, RTol: 1e-1, ATol: 1e-2},
			{Metric: AllClose, RTol: 1e-2, ATol: 1e-3},
			{Metric: AllClose, RTol: 1e-3, ATol: 1e-4},
			{Metric: AllClose, RTol: 1e-4, ATol: 1e-5},
			{Metric: AllClose, RTol: 1e-5, ATol: 1e-6},
		}},
	}
	cases := []struct {
		name   string
		jitter float64
	}{
		{"identical", 0},
		{"benign", 1e-6},
		{"divergent", 0.5},
	}
	for _, tc := range cases {
		a, b := randPair(42, 512, tc.jitter)
		for pi, p := range policies {
			want := true
			for _, c := range p.Criteria {
				_, ok, err := Compare(a, b, c)
				if err != nil {
					t.Fatal(err)
				}
				want = want && ok
			}
			got, err := Evaluate(a, b, p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s policy %d: Evaluate = %v, Compare conjunction = %v", tc.name, pi, got, want)
			}
		}
	}
}

// TestEvaluateNaN verifies the fused NaN semantics: any non-finite difference
// fails every criterion, matching Compare for realistic thresholds.
func TestEvaluateNaN(t *testing.T) {
	a := tensor.MustFromSlice([]float32{1, 2, 3}, 3)
	b := tensor.MustFromSlice([]float32{1, float32(math.NaN()), 3}, 3)
	for _, p := range []Policy{
		DefaultPolicy(),
		{Criteria: []Criterion{{Metric: MSE, Threshold: math.Inf(1)}}},
		{Criteria: []Criterion{{Metric: MaxAbsDiff, Threshold: math.Inf(1)}}},
	} {
		ok, err := Evaluate(a, b, p)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("NaN pair passed policy %+v", p)
		}
	}
	// NaN on both sides is still a failure (NaN != NaN for agreement).
	ok, err := Evaluate(b, b, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("NaN self-comparison passed")
	}
}

// TestEvaluateEdgeCases pins the special-case semantics inherited from
// Compare: zero-length tensors, all-zero tensors, shape mismatch, empty and
// unknown-metric policies.
func TestEvaluateEdgeCases(t *testing.T) {
	zero2 := tensor.New(2)
	if ok, err := Evaluate(zero2, zero2, DefaultPolicy()); err != nil || !ok {
		t.Errorf("all-zero pair: ok=%v err=%v, want pass", ok, err)
	}
	empty := tensor.New(0)
	if ok, err := Evaluate(empty, empty, DefaultPolicy()); err != nil || !ok {
		t.Errorf("empty pair: ok=%v err=%v, want pass", ok, err)
	}
	if ok, err := Evaluate(tensor.New(2), tensor.New(3), DefaultPolicy()); err != nil || ok {
		t.Errorf("shape mismatch: ok=%v err=%v, want inconsistent without error", ok, err)
	}
	one := tensor.MustFromSlice([]float32{1, 1}, 2)
	if ok, err := Evaluate(one, one, Policy{}); err != nil || !ok {
		t.Errorf("empty policy must use default: ok=%v err=%v", ok, err)
	}
	if _, err := Evaluate(one, one, Policy{Criteria: []Criterion{{Metric: Metric(99)}}}); err == nil {
		t.Error("unknown metric must error")
	}
}

// TestEvaluateDefaultPolicyAllocs locks in the zero-allocation guarantee of
// the fused checkpoint evaluation on the default policy, and of Consistent
// over already-built result maps — the per-checkpoint monitor hot path.
func TestEvaluateDefaultPolicyAllocs(t *testing.T) {
	a, b := randPair(7, 4096, 1e-6)
	pol := DefaultPolicy()
	if n := testing.AllocsPerRun(100, func() {
		if ok, err := Evaluate(a, b, pol); err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
	}); n != 0 {
		t.Errorf("Evaluate allocs/run = %v, want 0", n)
	}
	am := map[string]*tensor.Tensor{"y": a}
	bm := map[string]*tensor.Tensor{"y": b}
	if n := testing.AllocsPerRun(100, func() {
		if ok, err := Consistent(am, bm, pol); err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
	}); n != 0 {
		t.Errorf("Consistent allocs/run = %v, want 0", n)
	}
}
