package workpool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestNilPoolSequential(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	var sum int
	p.Run(10, func(i int) { sum += i })
	if sum != 45 {
		t.Fatalf("nil pool Run sum = %d, want 45", sum)
	}
	p.Close() // must not panic
}

func TestNewSmallParallelism(t *testing.T) {
	if New(0) != nil || New(1) != nil {
		t.Fatal("New(<=1) must return the nil sequential pool")
	}
}

func TestRunCoversAllIndices(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 3, 7, 16, 100, 1000} {
		hits := make([]atomic.Int32, n)
		p.Run(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d executed %d times, want 1", n, i, got)
			}
		}
	}
}

func TestRunRangePartition(t *testing.T) {
	p := New(3)
	defer p.Close()
	const n = 257
	var covered [n]atomic.Int32
	p.RunRange(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

// TestNestedRegions verifies that parallel regions issued from inside a
// parallel region complete without deadlock (busy workers ⇒ caller runs the
// inner region itself).
func TestNestedRegions(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	p.Run(8, func(i int) {
		p.Run(8, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 64 {
		t.Fatalf("nested total = %d, want 64", total.Load())
	}
}

// TestConcurrentCallers verifies that many goroutines can drive the same pool
// at once — the monitor runs several variant executors concurrently, all
// sharing per-executor pools but potentially also one pool.
func TestConcurrentCallers(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				p.Run(37, func(i int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if want := int64(8 * 50 * 37); total.Load() != want {
		t.Fatalf("total = %d, want %d", total.Load(), want)
	}
}

func TestUseAfterCloseFallsBack(t *testing.T) {
	p := New(4)
	p.Close()
	var sum int
	p.Run(10, func(i int) { sum += i }) // sequential fallback, no panic
	if sum != 45 {
		t.Fatalf("after close sum = %d, want 45", sum)
	}
}
