// Package workpool provides a persistent worker pool for intra-operator
// parallelism. The MVTEE inference hot path dispatches many small parallel
// regions per inference call (one per operator, §6.4's per-kernel cost axis);
// spawning goroutines per region costs more than the work itself for small
// operators. A Pool keeps its workers parked on a channel between regions so
// steady-state dispatch is a channel send plus an atomic fetch-add, with no
// goroutine creation.
//
// The scheduling discipline is chunked work stealing: a region [0,n) is split
// into a bounded number of contiguous chunks and workers (plus the caller,
// which always participates) claim chunks with an atomic counter. Dispatch is
// non-blocking — if every worker is busy (e.g. nested parallel regions), the
// caller simply executes the whole region itself, so nesting can never
// deadlock and never oversubscribes.
package workpool

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Pool utilization series: regions dispatched (and how many actually went
// parallel), plus offers made to idle workers and how many were accepted —
// the accept/offer ratio is the pool's effective utilization.
var (
	mRegions         = telemetry.Default.Counter(telemetry.MetricPoolRegions)
	mParallelRegions = telemetry.Default.Counter(telemetry.MetricPoolParallelRegions)
	mOffers          = telemetry.Default.Counter(telemetry.MetricPoolOffers)
	mAccepts         = telemetry.Default.Counter(telemetry.MetricPoolAccepts)
)

// chunksPerWorker bounds chunk count per region: enough pieces for load
// balancing across uneven chunk costs, few enough that per-chunk overhead
// stays negligible.
const chunksPerWorker = 4

// Pool is a fixed-size set of persistent workers. A nil *Pool is valid and
// runs everything sequentially on the caller, so callers never need to branch
// on parallelism. Methods are safe for concurrent use.
type Pool struct {
	tasks chan func()
	// workers is the total parallelism (background workers + the caller).
	workers int
	closed  atomic.Bool
}

// New returns a pool with the given total parallelism. The caller of each
// parallel region counts as one worker, so New starts workers-1 background
// goroutines. Parallelism <= 1 returns nil (the sequential pool).
func New(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	p := &Pool{tasks: make(chan func(), workers-1), workers: workers}
	for i := 0; i < workers-1; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Workers returns the pool's total parallelism (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close releases the background workers. Pending regions finish first; using
// the pool after Close falls back to sequential execution on the caller.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	if p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
	}
}

// RunRange executes f over a partition of [0,n) into contiguous [lo,hi)
// chunks, in parallel when workers are free. f must be safe to call
// concurrently on disjoint ranges. RunRange returns after every chunk has
// completed.
func (p *Pool) RunRange(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	rec := telemetry.Enabled()
	if rec {
		mRegions.Inc()
	}
	if p == nil || n == 1 || p.closed.Load() {
		f(0, n)
		return
	}
	chunks := p.workers * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	chunk := (n + chunks - 1) / chunks

	var next atomic.Int64
	steal := func() {
		for {
			c := int(next.Add(1)) - 1
			lo := c * chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			f(lo, hi)
		}
	}

	var wg sync.WaitGroup
	helper := func() {
		defer wg.Done()
		steal()
	}
	// Offer one task per idle worker; never block. If all workers are busy
	// the caller absorbs the region alone.
	accepted := 0
	for i := 0; i < p.workers-1; i++ {
		wg.Add(1)
		if rec {
			mOffers.Inc()
		}
		ok := false
		select {
		case p.tasks <- helper:
			ok = true
		default:
		}
		if !ok {
			wg.Done()
			break
		}
		accepted++
	}
	if rec {
		mAccepts.Add(uint64(accepted))
		if accepted > 0 {
			mParallelRegions.Inc()
		}
	}
	steal() // the caller always participates
	wg.Wait()
}

// Run executes f(i) for every i in [0,n), in parallel when workers are free.
func (p *Pool) Run(n int, f func(i int)) {
	p.RunRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}
