// Package mvtee is a Go implementation of MVTEE — multi-variant trusted
// execution for secure model inference (Qin & Gu, ACM Middleware 2025).
//
// MVTEE hardens TEE-based DNN inference against software vulnerabilities and
// fault attacks by running multiple, functionally equivalent but diversified
// inference variants of each model partition in separate TEEs, while a
// monitor TEE cross-checks their outputs at partition-boundary checkpoints.
// A bug or injected fault perturbs only the variant whose implementation it
// targets; the divergence (or crash) is detected at the next checkpoint and
// answered by voting, halting, or variant replacement — before damage
// propagates downstream.
//
// # Quick start
//
//	bundle, err := mvtee.BuildBundle(mvtee.OfflineConfig{
//		ModelName:        "resnet-50",
//		PartitionTargets: []int{5},
//		Specs:            mvtee.RealSetupSpecs(),
//	})
//	// ...
//	dep, err := mvtee.Deploy(bundle, 0, mvtee.DeployConfig{
//		MVX: &mvtee.MVXConfig{
//			Plans: []mvtee.PartitionPlan{ /* variant claims per partition */ },
//			Async: true,
//		},
//		Encrypt: true,
//	})
//	defer dep.Close()
//	out, err := dep.Infer(map[string]*mvtee.Tensor{"image": input})
//
// See examples/ for runnable scenarios and DESIGN.md for the system
// inventory. The package re-exports the user-facing API of the internal
// packages:
//
//   - offline tooling: model partitioning (internal/partition), multi-level
//     variant diversification (internal/diversify), encrypted bundle
//     construction (internal/core);
//   - online system: the monitor TEE with its MVX engine
//     (internal/monitor), variant TEEs (internal/variant), attested secure
//     channels (internal/securechan), and the simulated TEE substrate
//     (internal/enclave, internal/teeos);
//   - evaluation: the figure/table harness (internal/bench) and the
//     calibrated multicore pipeline simulator (internal/pipesim).
package mvtee

import (
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/monitor"
	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/variant"
)

// Offline phase.
type (
	// OfflineConfig drives bundle construction (Figure 2, offline phase).
	OfflineConfig = core.OfflineConfig
	// Bundle is the encrypted variant pool plus its keys and metadata.
	Bundle = core.Bundle
	// Entry identifies one encrypted pool entry.
	Entry = core.Entry
	// Spec is one variant recipe (multi-level diversification, §4.2).
	Spec = diversify.Spec
	// GraphTransform is one graph-level diversification step.
	GraphTransform = diversify.GraphTransform
	// ModelConfig scales the built-in model replicas.
	ModelConfig = models.Config
	// Graph is the ONNX-like model IR.
	Graph = graph.Graph
	// PartitionSet is a complete partitioning into pipeline stages.
	PartitionSet = partition.Set
	// PartitionOptions tunes the random-contraction algorithm.
	PartitionOptions = partition.Options
)

// Online phase.
type (
	// DeployConfig drives system bring-up (Figure 2, online phase).
	DeployConfig = core.DeployConfig
	// Deployment is a running MVTEE system.
	Deployment = core.Deployment
	// MVXConfig is the runtime-provisioned MVX configuration (§4.3).
	MVXConfig = monitor.MVXConfig
	// PartitionPlan claims variants for one partition.
	PartitionPlan = monitor.PartitionPlan
	// BatchResult is a per-batch inference outcome.
	BatchResult = monitor.BatchResult
	// Event is a security-relevant engine occurrence.
	Event = monitor.Event
	// VariantOptions customizes variant construction (fault hooks, tests).
	VariantOptions = variant.Options
	// Tensor is the dense float32 tensor type.
	Tensor = tensor.Tensor
	// Criterion is one thresholded consistency metric.
	Criterion = check.Criterion
	// Metric identifies a consistency measure.
	Metric = check.Metric
)

// Consistency metrics (§5.2).
const (
	Cosine     = check.Cosine
	MSE        = check.MSE
	MaxAbsDiff = check.MaxAbsDiff
	AllClose   = check.AllClose
)

// Response modes (§2.4, §4.3).
const (
	Halt        = monitor.Halt
	DropVariant = monitor.DropVariant
	ReportOnly  = monitor.ReportOnly
	Recover     = monitor.Recover
)

// Engine event kinds observable via Deployment.Engine.Events().
const (
	EventDivergence      = monitor.EventDivergence
	EventLateDissent     = monitor.EventLateDissent
	EventVariantDown     = monitor.EventVariantDown
	EventVariantDropped  = monitor.EventVariantDropped
	EventVariantTimeout  = monitor.EventVariantTimeout
	EventVariantReplaced = monitor.EventVariantReplaced
	EventReplaceFailed   = monitor.EventReplaceFailed
	EventLadderDemoted   = monitor.EventLadderDemoted
	EventLadderPromoted  = monitor.EventLadderPromoted
)

// Transports.
const (
	InProc      = core.InProc
	TCPLoopback = core.TCPLoopback
)

// BuildBundle runs the offline ML MVX tool pipeline: partitioning, variant
// generation, and per-entry encryption.
func BuildBundle(cfg OfflineConfig) (*Bundle, error) { return core.BuildBundle(cfg) }

// Deploy brings up the monitor TEE and variant TEEs on a partition set and
// returns a running system.
func Deploy(b *Bundle, setIdx int, cfg DeployConfig) (*Deployment, error) {
	return core.Deploy(b, setIdx, cfg)
}

// NewTensor returns a zero-filled tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// ModelNames lists the built-in model replicas (the paper's seven
// workloads).
func ModelNames() []string { return models.Names() }

// BuildModel constructs a built-in model graph.
func BuildModel(name string, cfg ModelConfig) (*Graph, error) { return models.Build(name, cfg) }

// ReplicaSpec is the identical-variant recipe (§6.1).
func ReplicaSpec(name string) Spec { return diversify.ReplicaSpec(name) }

// RealSetupSpecs is the diversified recipe set of the real-setup evaluation
// (§6.4).
func RealSetupSpecs() []Spec { return diversify.RealSetupSpecs() }

// HardenedSpecs enumerates the software-hardening variant family (Table 1).
func HardenedSpecs() []Spec { return diversify.HardenedSpecs() }
